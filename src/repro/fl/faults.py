"""Deterministic fault injection and round-robustness primitives.

PARDON's headline claim is *robustness*, yet a federated system's first
robustness problem is mechanical: clients drop out, workers crash, slow
("straggler") clients hold a round hostage, and uploads arrive corrupted.
This module is the chaos-engineering half of that story — a seeded,
deterministic :class:`FaultPlan` that both execution engines
(:mod:`repro.fl.executor`) can inject, so a faulty run is exactly as
reproducible as a clean one — plus the shared vocabulary the engines use
to report what a fault did to a round (:class:`RoundFaultReport`) and the
typed error a round raises when a deadline expires with nothing to
aggregate (:class:`RoundTimeoutError`).

Determinism model
-----------------
Every per-(client, round) decision is a pure function of the plan: the
fault kind fires when ``stable_hash(seed, kind, client_id, round)`` maps
below the configured rate.  Nothing depends on wall clock, worker count,
or sampling order, so the *observable* effect of a plan — which clients
survive each round — is identical on the serial engine and on process
pools of any size, which is what the chaos tests pin down bit-for-bit.

Fault kinds
-----------
``dropout``
    The client never responds this round: it is dropped before dispatch
    on every engine (reason ``"dropout"``).
``straggler``
    The client is slow by ``delay_seconds``.  *Cooperative* semantics keep
    traces engine-invariant: when a round deadline is configured and the
    injected delay already exceeds it, the client is dropped up front
    (reason ``"straggler"``) on every engine; otherwise the delay is
    really slept inside the local update (worker-side under the parallel
    engine) and the client survives.  The cooperative check is
    *per client*: on the parallel engine co-resident surviving stragglers
    still serialize on their slot's FIFO queue, so the bit-identical
    guarantee requires the deadline to comfortably exceed the per-slot
    *sum* of surviving injected delays plus compute — pick
    ``deadline >> participants x straggler_delay`` (as the chaos tests
    and benches do), or use ``hang`` when the point is to blow the
    deadline for real.
``hang``
    An *uncooperative* straggler, only schedulable as an explicit
    :class:`FaultEvent`: the parallel engine genuinely sleeps in the
    worker and lets the server's wall-clock deadline catch it (reason
    ``"deadline"``) — this is how the real timeout machinery is
    chaos-tested.  The serial engine cannot preempt a running update, so
    it approximates with the cooperative rule.
``corrupt``
    The local update runs, but its uploaded weights are poisoned with
    non-finite values (:func:`poison_state`).  Engines with a fault plan
    validate every decoded upload (:func:`state_is_corrupt`) and drop the
    bad ones from aggregation (reason ``"corrupt"``); the update's scratch
    delta is still applied — the style cache is not what is corrupt.
``crash``
    A worker process dies mid-round.  ``crash_rounds`` schedules one crash
    in each listed round; the victim is picked deterministically among the
    round's dispatched participants (:meth:`FaultPlan.crash_victim`).  The
    parallel engine hard-kills the victim's home worker (``os._exit``),
    then rebuilds the pool slot, re-registers what the re-run needs over
    the existing registration/broadcast path, and re-executes the
    co-resident tasks that died with the process — only the victim itself
    is dropped (reason ``"crash"``), so the survivor set matches the
    serial engine, which simply skips the victim.
``byzantine``
    An *adversarial* client: the local update runs honestly, then the
    upload is replaced by an attack state (:func:`byzantine_state`) that
    is perfectly well-formed — finite everywhere, right shapes — so it
    sails through the NaN screen and reaches aggregation, which is the
    point: only a robust aggregation rule (:mod:`repro.fl.aggregate`) or
    the opt-in magnitude screen (``screen=``) stops it.  Attack modes:
    ``signflip`` reflects the honest update through the broadcast state
    (``ref - delta``), ``scale`` amplifies it by ``BYZANTINE_SCALE``
    (a model-poisoning boost), ``random`` uploads Gaussian noise matched
    to the broadcast state's per-tensor scale.  Payloads are pure
    functions of ``(seed, client, round)`` like every other injection.

Drop reasons
------------
``RoundRecord.dropped`` maps every selected-but-unaggregated client to a
typed reason from :data:`DROP_REASONS`: ``dropout``, ``straggler``,
``deadline``, ``corrupt``, ``crash``, and ``quorum`` as described above,
plus ``disconnect`` — a *remote* failure mode with no in-host analogue:
the cross-machine engine (:class:`repro.fl.net.executor.RemoteExecutor`)
drops a client with reason ``"disconnect"`` when the agent hosting it
vanishes mid-round (socket EOF or write error).  Like a crash, the round
closes gracefully over the survivors; unlike a crash, nothing is rebuilt
— the dead agent's clients are simply outstanding until the server
re-homes them in a later round.

Magnitude screen
----------------
``screen=M`` arms a second acceptance check on every decoded upload:
reject states whose global L2 norm exceeds ``M`` times the broadcast
state's norm (reason ``"corrupt"``, same drop path as NaN — ref-chains
advance identically).  This catches ``scale``-mode attacks even under the
plain ``mean`` aggregator.  Off by default: the screen changes no prior
trace unless asked for.

Round control
-------------
Deadlines widen from a fixed float to a *policy*: ``30`` still means 30
wall-clock seconds every round (:class:`FixedDeadline`), while
``percentile:p95`` (:class:`AdaptiveDeadline`) tracks a sliding window of
recent round durations and sets each round's deadline to a percentile of
the window times a slack factor — no budget until the window has a few
entries.  :func:`make_deadline_policy` parses both forms.  Quorum
early-close lives in the executors; the two compose (quorum closes the
round early, the deadline bounds it).

Spec strings
------------
``--faults`` on the CLI (and ``FederatedConfig.faults``) accepts a
compact comma-separated spec, e.g.::

    dropout=0.1,straggler=0.25:0.05,corrupt=0.05,crash=1+4,seed=7
    byzantine=0.2:scale,screen=4,seed=7

``straggler`` takes ``rate`` or ``rate:delay_seconds``; ``crash`` takes
``+``-separated round indices; ``byzantine`` takes ``rate`` or
``rate:mode``; ``screen`` takes the norm multiple.  :func:`make_fault_plan`
parses it (and passes through ``None`` / already-built plans unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import stable_hash

__all__ = [
    "BYZANTINE_MODES",
    "DROP_REASONS",
    "FAULT_KINDS",
    "AdaptiveDeadline",
    "FaultEvent",
    "FaultPlan",
    "FixedDeadline",
    "RoundActions",
    "RoundFaultReport",
    "RoundTimeoutError",
    "byzantine_state",
    "make_deadline_policy",
    "make_fault_plan",
    "poison_state",
    "state_is_corrupt",
]

#: Injectable fault kinds (see the module docstring for semantics).
FAULT_KINDS = ("dropout", "straggler", "hang", "corrupt", "crash", "byzantine")

#: Typed reasons engines put in ``RoundRecord.dropped`` (see the module
#: docstring's "Drop reasons" section).  ``disconnect`` is remote-only.
DROP_REASONS = (
    "dropout",
    "straggler",
    "deadline",
    "corrupt",
    "crash",
    "quorum",
    "disconnect",
)

#: Default injected slowdown for rate-scheduled stragglers (seconds).
DEFAULT_STRAGGLER_DELAY = 0.05

#: Byzantine attack modes (see the module docstring).
BYZANTINE_MODES = ("signflip", "scale", "random")

#: Amplification factor for the ``scale`` attack mode.
BYZANTINE_SCALE = 100.0


class RoundTimeoutError(RuntimeError):
    """A round's deadline expired before the round could close.

    Partial aggregation absorbs individual stragglers (survivors are
    aggregated, the rest are dropped and recorded), but when the deadline
    passes with *zero* updates — or, under a configured quorum, with fewer
    accepted uploads than the quorum floor — there is no viable round.
    The error names the offending client ids, and, when a quorum was
    configured, the quorum itself plus the partial accepted set, so the
    failure is diagnosable from the message alone.
    """

    def __init__(
        self,
        round_index: int,
        client_ids: tuple[int, ...],
        quorum: int | None = None,
        accepted: tuple[int, ...] = (),
    ) -> None:
        self.round_index = int(round_index)
        self.client_ids = tuple(client_ids)
        self.quorum = None if quorum is None else int(quorum)
        self.accepted = tuple(accepted)
        message = (
            f"round {round_index} deadline expired with no updates; "
            f"outstanding clients: {list(self.client_ids)}"
        )
        if self.quorum is not None:
            message = (
                f"round {round_index} deadline expired below quorum "
                f"{self.quorum} (accepted {len(self.accepted)}: "
                f"{list(self.accepted)}); outstanding clients: "
                f"{list(self.client_ids)}"
            )
        super().__init__(message)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` hits ``client_id`` in ``round_index``.

    ``delay_seconds`` only matters for ``straggler``/``hang`` (the
    injected slowdown).  Events are what a plan's rate-based schedule
    resolves to, and explicit events passed to :class:`FaultPlan` take
    precedence over the rates — the chaos tests use them to pin exact
    scenarios.
    """

    kind: str
    round_index: int
    client_id: int
    delay_seconds: float = 0.0
    #: Attack mode (``byzantine`` only; defaults to ``signflip``).
    mode: str = ""
    #: Seed for randomized attack payloads (``byzantine`` only) — events
    #: carry it because the parallel engine ships events, not the plan,
    #: into worker tasks.
    payload_seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.kind == "byzantine":
            if not self.mode:
                object.__setattr__(self, "mode", BYZANTINE_MODES[0])
            if self.mode not in BYZANTINE_MODES:
                raise ValueError(
                    f"unknown byzantine mode {self.mode!r}; expected one of "
                    f"{BYZANTINE_MODES}"
                )


@dataclass
class RoundActions:
    """A plan's resolved decisions for one round's participant list.

    ``skipped`` maps clients dropped *before dispatch* to their reason
    (dropouts, and cooperative straggler drops when the injected delay
    already exceeds the deadline); ``injected`` maps the remaining faulty
    clients to the event the engine must execute inside the update
    (sleeps, corruption, the crash victim's kill).  ``straggler_seconds``
    is the round's total injected slowdown — a plan-derived number, so it
    is identical on every engine.
    """

    skipped: dict[int, str] = field(default_factory=dict)
    injected: dict[int, FaultEvent] = field(default_factory=dict)
    straggler_seconds: float = 0.0


@dataclass
class RoundFaultReport:
    """What the fault layer did to one executed round.

    Engines publish one per round (:attr:`repro.fl.executor.Executor.
    last_fault_report`); the server folds it into the run history
    (``RoundRecord.dropped``) and the timing report
    (``dropped_clients`` / ``straggler_seconds`` / ``rebuilt_workers``).
    """

    round_index: int = 0
    dropped: dict[int, str] = field(default_factory=dict)
    straggler_seconds: float = 0.0
    rebuilt_workers: int = 0
    #: Whether a quorum closed the round before all uploads arrived.
    early_closed: bool = False
    #: Wall-clock seconds the early close saved against the round's
    #: deadline (0 when no deadline was configured).
    early_close_seconds: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of faults for a federated run.

    Rate-based kinds fire per (client, round) when the stable hash of
    ``(seed, kind, client_id, round)`` maps below the rate — no state, no
    generation step, and no dependence on population size, so one plan
    drives any engine and any sampling.  ``crash_rounds`` schedules one
    worker crash in each listed round; ``events`` pins explicit faults
    that override the rates for their (client, round).
    """

    seed: int = 0
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_delay: float = DEFAULT_STRAGGLER_DELAY
    corrupt_rate: float = 0.0
    crash_rounds: tuple[int, ...] = ()
    events: tuple[FaultEvent, ...] = ()
    byzantine_rate: float = 0.0
    byzantine_mode: str = BYZANTINE_MODES[0]
    #: Magnitude screen: reject uploads whose global norm exceeds this
    #: multiple of the broadcast state's norm (``None`` = screen off).
    norm_screen: float | None = None

    def __post_init__(self) -> None:
        for name in ("dropout_rate", "straggler_rate", "corrupt_rate",
                     "byzantine_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_delay < 0:
            raise ValueError(
                f"straggler_delay must be >= 0, got {self.straggler_delay}"
            )
        if self.byzantine_mode not in BYZANTINE_MODES:
            raise ValueError(
                f"unknown byzantine mode {self.byzantine_mode!r}; expected "
                f"one of {BYZANTINE_MODES}"
            )
        if self.norm_screen is not None and self.norm_screen <= 0:
            raise ValueError(
                f"norm_screen must be > 0, got {self.norm_screen}"
            )
        object.__setattr__(
            self, "crash_rounds", tuple(int(r) for r in self.crash_rounds)
        )
        if any(r < 0 for r in self.crash_rounds):
            raise ValueError(f"crash_rounds must be >= 0, got {self.crash_rounds}")
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"events must be FaultEvent, got {event!r}")

    # -- per-(client, round) schedule ----------------------------------------

    def _chance(self, kind: str, client_id: int, round_index: int) -> float:
        """Deterministic uniform draw in [0, 1) for one (kind, client,
        round) cell — the whole schedule is a pure function of the seed."""
        return stable_hash(self.seed, "fault", kind, client_id, round_index) / float(
            1 << 63
        )

    def fault_for(self, client_id: int, round_index: int) -> FaultEvent | None:
        """The fault hitting ``client_id`` in ``round_index``, if any.

        Explicit events win; otherwise the rate-based kinds are checked in
        a fixed precedence order (dropout, straggler, corrupt, byzantine)
        so at most one fault fires per cell.  Crashes are scheduled per
        *round*, not per client — see :meth:`crash_victim`.
        """
        for event in self.events:
            if (
                event.client_id == client_id
                and event.round_index == round_index
                and event.kind != "crash"
            ):
                return event
        if self._chance("dropout", client_id, round_index) < self.dropout_rate:
            return FaultEvent("dropout", round_index, client_id)
        if self._chance("straggler", client_id, round_index) < self.straggler_rate:
            return FaultEvent(
                "straggler", round_index, client_id,
                delay_seconds=self.straggler_delay,
            )
        if self._chance("corrupt", client_id, round_index) < self.corrupt_rate:
            return FaultEvent("corrupt", round_index, client_id)
        if self._chance("byzantine", client_id, round_index) < self.byzantine_rate:
            return FaultEvent(
                "byzantine", round_index, client_id,
                mode=self.byzantine_mode,
                payload_seed=stable_hash(
                    self.seed, "byzantine-payload", client_id, round_index
                ),
            )
        return None

    def crash_victim(
        self, round_index: int, candidate_ids: "list[int] | tuple[int, ...]"
    ) -> int | None:
        """The client whose home worker crashes this round, or ``None``.

        An explicit crash event names its victim directly (and only fires
        if that client is actually among the candidates); a scheduled
        ``crash_rounds`` entry picks deterministically from the sorted
        candidate list, so every engine agrees on the victim.
        """
        candidates = sorted(set(candidate_ids))
        for event in self.events:
            if event.kind == "crash" and event.round_index == round_index:
                return event.client_id if event.client_id in candidates else None
        if round_index in self.crash_rounds and candidates:
            pick = stable_hash(self.seed, "crash", round_index) % len(candidates)
            return candidates[pick]
        return None

    def actions_for_round(
        self,
        participant_ids: "list[int] | tuple[int, ...]",
        round_index: int,
        deadline: float | None,
    ) -> RoundActions:
        """Resolve the plan against one round's participant list.

        This is the single decision point both engines share: who is
        skipped before dispatch (and why), which dispatched clients carry
        an injected fault, and the round's plan-derived straggler budget.
        """
        actions = RoundActions()
        for client_id in participant_ids:
            event = self.fault_for(client_id, round_index)
            if event is None:
                continue
            if event.kind == "dropout":
                actions.skipped[client_id] = "dropout"
            elif event.kind == "straggler":
                actions.straggler_seconds += event.delay_seconds
                if deadline is not None and event.delay_seconds >= deadline:
                    actions.skipped[client_id] = "straggler"
                else:
                    actions.injected[client_id] = event
            else:  # hang / corrupt / byzantine execute inside the update
                actions.injected[client_id] = event
        victim = self.crash_victim(
            round_index,
            [cid for cid in participant_ids if cid not in actions.skipped],
        )
        if victim is not None:
            actions.injected[victim] = FaultEvent("crash", round_index, victim)
        return actions


def make_fault_plan(spec: "str | FaultPlan | None") -> FaultPlan | None:
    """Build a :class:`FaultPlan` from a CLI spec string.

    ``None`` and already-built plans pass through unchanged — the same
    convention as :func:`repro.fl.codec.make_codec` and
    :func:`repro.fl.transport.make_transport`, so every API taking a plan
    accepts any of the three forms.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise TypeError(f"fault spec must be a non-empty string, got {spec!r}")
    kwargs: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part or "=" not in part:
            raise ValueError(
                f"bad fault spec item {part!r} in {spec!r}; expected key=value"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "dropout":
                kwargs["dropout_rate"] = float(value)
            elif key == "straggler":
                rate, _, delay = value.partition(":")
                kwargs["straggler_rate"] = float(rate)
                if delay:
                    kwargs["straggler_delay"] = float(delay)
            elif key == "corrupt":
                kwargs["corrupt_rate"] = float(value)
            elif key == "crash":
                kwargs["crash_rounds"] = tuple(
                    int(r) for r in value.split("+") if r
                )
            elif key == "byzantine":
                rate, _, mode = value.partition(":")
                kwargs["byzantine_rate"] = float(rate)
                if mode:
                    kwargs["byzantine_mode"] = mode
            elif key == "screen":
                kwargs["norm_screen"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r} in {spec!r}; expected "
                    f"dropout, straggler, corrupt, crash, byzantine, "
                    f"screen, or seed"
                )
        except ValueError as exc:
            if "fault spec" in str(exc):
                raise
            raise ValueError(
                f"bad value {value!r} for {key!r} in fault spec {spec!r}"
            ) from exc
    return FaultPlan(**kwargs)


def poison_state(state: dict) -> dict:
    """A corrupted copy of ``state``: the first tensor is all-NaN.

    Used by the ``corrupt`` fault to simulate a damaged upload.  The
    poison is injected *before* the wire codec, so it survives any
    lossless pipeline; detection (:func:`state_is_corrupt`) runs on the
    decoded server-side state, exactly where real validation would sit.
    """
    poisoned = dict(state)
    for key, value in poisoned.items():
        value = np.asarray(value)
        if np.issubdtype(value.dtype, np.floating):
            poisoned[key] = np.full_like(value, np.nan)
            break
    return poisoned


def byzantine_state(state: dict, ref: dict, event: FaultEvent) -> dict:
    """The adversarial upload a byzantine client sends instead of its
    honest update.

    A pure function of ``(state, ref, event)`` — the event carries the
    attack ``mode`` and ``payload_seed``, so both engines (and any worker)
    produce bit-identical attack states.  ``ref`` is the round's broadcast
    state: attacks are expressed against the update delta, which is what
    aggregation actually consumes.  Non-floating tensors pass through
    untouched; every produced value is finite, so the attack reaches
    aggregation (defeating it is the aggregator's job, or the magnitude
    screen's).
    """
    if event.kind != "byzantine":
        raise ValueError(f"expected a byzantine event, got {event.kind!r}")
    rng = (
        np.random.default_rng(event.payload_seed)
        if event.mode == "random"
        else None
    )
    attacked = {}
    for key, value in state.items():
        value = np.asarray(value)
        if not np.issubdtype(value.dtype, np.floating):
            attacked[key] = value
            continue
        base = np.asarray(ref[key])
        if event.mode == "signflip":
            attacked[key] = (2.0 * base - value).astype(value.dtype, copy=False)
        elif event.mode == "scale":
            attacked[key] = (
                base + BYZANTINE_SCALE * (value - base)
            ).astype(value.dtype, copy=False)
        else:  # random
            sigma = float(np.std(base)) or 1.0
            attacked[key] = rng.normal(0.0, sigma, size=value.shape).astype(
                value.dtype
            )
    return attacked


def _state_norm(state: dict) -> float:
    """Global L2 norm over the floating tensors of ``state``."""
    total = 0.0
    for value in state.values():
        value = np.asarray(value)
        if np.issubdtype(value.dtype, np.floating):
            total += float(np.square(value, dtype=np.float64).sum())
    return float(np.sqrt(total))


def state_is_corrupt(
    state: dict,
    ref: dict | None = None,
    norm_screen: float | None = None,
) -> bool:
    """Whether an upload fails the server-side acceptance checks.

    The base check rejects any non-finite value.  When a broadcast
    reference and a ``norm_screen`` multiple are supplied, a magnitude
    screen additionally rejects states whose global L2 norm exceeds
    ``norm_screen x ||ref||`` — finite but absurdly scaled uploads (the
    ``scale`` byzantine mode) fail this even though every value is a
    perfectly ordinary float.  Engines run this on every decoded upload
    when a fault plan is active; rejects use the ``"corrupt"`` drop path,
    so codec ref-chains stay in lockstep exactly as for NaN poisoning.
    """
    if any(
        not np.isfinite(np.asarray(value)).all() for value in state.values()
    ):
        return True
    if ref is not None and norm_screen is not None:
        ref_norm = _state_norm(ref)
        if ref_norm > 0 and _state_norm(state) > norm_screen * ref_norm:
            return True
    return False


# -- deadline policies --------------------------------------------------------


@dataclass(frozen=True)
class FixedDeadline:
    """The historical deadline: a constant wall-clock budget per round."""

    seconds: float
    #: Fixed policies never adapt; the attribute keeps the two policy
    #: types interchangeable for the executors.
    adaptive = False

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError(
                f"deadline must be > 0 seconds, got {self.seconds}"
            )

    @property
    def spec(self) -> float:
        return self.seconds

    def resolve(self, durations: "list[float] | tuple[float, ...]") -> float:
        return self.seconds


#: Rounds of history an adaptive policy needs before it starts enforcing.
ADAPTIVE_WARMUP_ROUNDS = 3


@dataclass(frozen=True)
class AdaptiveDeadline:
    """Percentile-of-recent-rounds deadline (``--deadline percentile:p95``).

    Each round's budget is the given percentile of a sliding window of
    measured round durations, times a ``slack`` factor (a p95 deadline
    with no slack would kill ~5% of honest rounds).  The first
    ``ADAPTIVE_WARMUP_ROUNDS`` rounds run unbounded while the window
    fills — there is nothing defensible to extrapolate from one sample.
    Because the budget depends on wall clock, adaptive runs are *not*
    trace-reproducible by construction; the executors record the accepted
    survivor set per round (``RoundRecord.accepted``) so they replay
    exactly instead.
    """

    percentile: float = 95.0
    window: int = 8
    slack: float = 1.5
    adaptive = True

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.slack <= 0:
            raise ValueError(f"slack must be > 0, got {self.slack}")

    @property
    def spec(self) -> str:
        return f"percentile:p{self.percentile:g}"

    def resolve(
        self, durations: "list[float] | tuple[float, ...]"
    ) -> float | None:
        history = list(durations)[-self.window :]
        if len(history) < ADAPTIVE_WARMUP_ROUNDS:
            return None
        return float(np.percentile(history, self.percentile)) * self.slack


def make_deadline_policy(
    spec: "float | str | FixedDeadline | AdaptiveDeadline | None",
) -> "FixedDeadline | AdaptiveDeadline | None":
    """Build a deadline policy from any accepted ``deadline`` form.

    ``None`` (no deadline) and already-built policies pass through; a
    number builds the historical :class:`FixedDeadline`; the string form
    ``"percentile:pNN"`` builds an :class:`AdaptiveDeadline` (a numeric
    string is accepted as a fixed deadline for CLI convenience).
    """
    if spec is None or isinstance(spec, (FixedDeadline, AdaptiveDeadline)):
        return spec
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return FixedDeadline(float(spec))
    if not isinstance(spec, str) or not spec.strip():
        raise TypeError(
            f"deadline must be seconds or 'percentile:pNN', got {spec!r}"
        )
    text = spec.strip()
    try:
        seconds = float(text)
    except ValueError:
        seconds = None
    if seconds is not None:
        return FixedDeadline(seconds)
    head, _, tail = text.partition(":")
    if head.strip() != "percentile" or not tail.strip().startswith("p"):
        raise ValueError(
            f"bad deadline spec {spec!r}; expected seconds or "
            f"'percentile:pNN' (e.g. percentile:p95)"
        )
    try:
        percentile = float(tail.strip()[1:])
    except ValueError as exc:
        raise ValueError(
            f"bad percentile in deadline spec {spec!r}"
        ) from exc
    return AdaptiveDeadline(percentile=percentile)
