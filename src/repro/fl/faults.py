"""Deterministic fault injection and round-robustness primitives.

PARDON's headline claim is *robustness*, yet a federated system's first
robustness problem is mechanical: clients drop out, workers crash, slow
("straggler") clients hold a round hostage, and uploads arrive corrupted.
This module is the chaos-engineering half of that story — a seeded,
deterministic :class:`FaultPlan` that both execution engines
(:mod:`repro.fl.executor`) can inject, so a faulty run is exactly as
reproducible as a clean one — plus the shared vocabulary the engines use
to report what a fault did to a round (:class:`RoundFaultReport`) and the
typed error a round raises when a deadline expires with nothing to
aggregate (:class:`RoundTimeoutError`).

Determinism model
-----------------
Every per-(client, round) decision is a pure function of the plan: the
fault kind fires when ``stable_hash(seed, kind, client_id, round)`` maps
below the configured rate.  Nothing depends on wall clock, worker count,
or sampling order, so the *observable* effect of a plan — which clients
survive each round — is identical on the serial engine and on process
pools of any size, which is what the chaos tests pin down bit-for-bit.

Fault kinds
-----------
``dropout``
    The client never responds this round: it is dropped before dispatch
    on every engine (reason ``"dropout"``).
``straggler``
    The client is slow by ``delay_seconds``.  *Cooperative* semantics keep
    traces engine-invariant: when a round deadline is configured and the
    injected delay already exceeds it, the client is dropped up front
    (reason ``"straggler"``) on every engine; otherwise the delay is
    really slept inside the local update (worker-side under the parallel
    engine) and the client survives.  The cooperative check is
    *per client*: on the parallel engine co-resident surviving stragglers
    still serialize on their slot's FIFO queue, so the bit-identical
    guarantee requires the deadline to comfortably exceed the per-slot
    *sum* of surviving injected delays plus compute — pick
    ``deadline >> participants x straggler_delay`` (as the chaos tests
    and benches do), or use ``hang`` when the point is to blow the
    deadline for real.
``hang``
    An *uncooperative* straggler, only schedulable as an explicit
    :class:`FaultEvent`: the parallel engine genuinely sleeps in the
    worker and lets the server's wall-clock deadline catch it (reason
    ``"deadline"``) — this is how the real timeout machinery is
    chaos-tested.  The serial engine cannot preempt a running update, so
    it approximates with the cooperative rule.
``corrupt``
    The local update runs, but its uploaded weights are poisoned with
    non-finite values (:func:`poison_state`).  Engines with a fault plan
    validate every decoded upload (:func:`state_is_corrupt`) and drop the
    bad ones from aggregation (reason ``"corrupt"``); the update's scratch
    delta is still applied — the style cache is not what is corrupt.
``crash``
    A worker process dies mid-round.  ``crash_rounds`` schedules one crash
    in each listed round; the victim is picked deterministically among the
    round's dispatched participants (:meth:`FaultPlan.crash_victim`).  The
    parallel engine hard-kills the victim's home worker (``os._exit``),
    then rebuilds the pool slot, re-registers what the re-run needs over
    the existing registration/broadcast path, and re-executes the
    co-resident tasks that died with the process — only the victim itself
    is dropped (reason ``"crash"``), so the survivor set matches the
    serial engine, which simply skips the victim.

Spec strings
------------
``--faults`` on the CLI (and ``FederatedConfig.faults``) accepts a
compact comma-separated spec, e.g.::

    dropout=0.1,straggler=0.25:0.05,corrupt=0.05,crash=1+4,seed=7

``straggler`` takes ``rate`` or ``rate:delay_seconds``; ``crash`` takes
``+``-separated round indices.  :func:`make_fault_plan` parses it (and
passes through ``None`` / already-built plans unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import stable_hash

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "RoundActions",
    "RoundFaultReport",
    "RoundTimeoutError",
    "make_fault_plan",
    "poison_state",
    "state_is_corrupt",
]

#: Injectable fault kinds (see the module docstring for semantics).
FAULT_KINDS = ("dropout", "straggler", "hang", "corrupt", "crash")

#: Default injected slowdown for rate-scheduled stragglers (seconds).
DEFAULT_STRAGGLER_DELAY = 0.05


class RoundTimeoutError(RuntimeError):
    """A round's deadline expired with *zero* updates collected.

    Partial aggregation absorbs individual stragglers (survivors are
    aggregated, the rest are dropped and recorded), but when the deadline
    passes and nothing at all arrived there is no state to aggregate —
    the round failed, and the caller gets the offending client ids
    instead of an untyped hang or a bare pool error.
    """

    def __init__(self, round_index: int, client_ids: tuple[int, ...]) -> None:
        self.round_index = int(round_index)
        self.client_ids = tuple(client_ids)
        super().__init__(
            f"round {round_index} deadline expired with no updates; "
            f"outstanding clients: {list(self.client_ids)}"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` hits ``client_id`` in ``round_index``.

    ``delay_seconds`` only matters for ``straggler``/``hang`` (the
    injected slowdown).  Events are what a plan's rate-based schedule
    resolves to, and explicit events passed to :class:`FaultPlan` take
    precedence over the rates — the chaos tests use them to pin exact
    scenarios.
    """

    kind: str
    round_index: int
    client_id: int
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )


@dataclass
class RoundActions:
    """A plan's resolved decisions for one round's participant list.

    ``skipped`` maps clients dropped *before dispatch* to their reason
    (dropouts, and cooperative straggler drops when the injected delay
    already exceeds the deadline); ``injected`` maps the remaining faulty
    clients to the event the engine must execute inside the update
    (sleeps, corruption, the crash victim's kill).  ``straggler_seconds``
    is the round's total injected slowdown — a plan-derived number, so it
    is identical on every engine.
    """

    skipped: dict[int, str] = field(default_factory=dict)
    injected: dict[int, FaultEvent] = field(default_factory=dict)
    straggler_seconds: float = 0.0


@dataclass
class RoundFaultReport:
    """What the fault layer did to one executed round.

    Engines publish one per round (:attr:`repro.fl.executor.Executor.
    last_fault_report`); the server folds it into the run history
    (``RoundRecord.dropped``) and the timing report
    (``dropped_clients`` / ``straggler_seconds`` / ``rebuilt_workers``).
    """

    round_index: int = 0
    dropped: dict[int, str] = field(default_factory=dict)
    straggler_seconds: float = 0.0
    rebuilt_workers: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of faults for a federated run.

    Rate-based kinds fire per (client, round) when the stable hash of
    ``(seed, kind, client_id, round)`` maps below the rate — no state, no
    generation step, and no dependence on population size, so one plan
    drives any engine and any sampling.  ``crash_rounds`` schedules one
    worker crash in each listed round; ``events`` pins explicit faults
    that override the rates for their (client, round).
    """

    seed: int = 0
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_delay: float = DEFAULT_STRAGGLER_DELAY
    corrupt_rate: float = 0.0
    crash_rounds: tuple[int, ...] = ()
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in ("dropout_rate", "straggler_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_delay < 0:
            raise ValueError(
                f"straggler_delay must be >= 0, got {self.straggler_delay}"
            )
        object.__setattr__(
            self, "crash_rounds", tuple(int(r) for r in self.crash_rounds)
        )
        if any(r < 0 for r in self.crash_rounds):
            raise ValueError(f"crash_rounds must be >= 0, got {self.crash_rounds}")
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"events must be FaultEvent, got {event!r}")

    # -- per-(client, round) schedule ----------------------------------------

    def _chance(self, kind: str, client_id: int, round_index: int) -> float:
        """Deterministic uniform draw in [0, 1) for one (kind, client,
        round) cell — the whole schedule is a pure function of the seed."""
        return stable_hash(self.seed, "fault", kind, client_id, round_index) / float(
            1 << 63
        )

    def fault_for(self, client_id: int, round_index: int) -> FaultEvent | None:
        """The fault hitting ``client_id`` in ``round_index``, if any.

        Explicit events win; otherwise the rate-based kinds are checked in
        a fixed precedence order (dropout, straggler, corrupt) so at most
        one fault fires per cell.  Crashes are scheduled per *round*, not
        per client — see :meth:`crash_victim`.
        """
        for event in self.events:
            if (
                event.client_id == client_id
                and event.round_index == round_index
                and event.kind != "crash"
            ):
                return event
        if self._chance("dropout", client_id, round_index) < self.dropout_rate:
            return FaultEvent("dropout", round_index, client_id)
        if self._chance("straggler", client_id, round_index) < self.straggler_rate:
            return FaultEvent(
                "straggler", round_index, client_id,
                delay_seconds=self.straggler_delay,
            )
        if self._chance("corrupt", client_id, round_index) < self.corrupt_rate:
            return FaultEvent("corrupt", round_index, client_id)
        return None

    def crash_victim(
        self, round_index: int, candidate_ids: "list[int] | tuple[int, ...]"
    ) -> int | None:
        """The client whose home worker crashes this round, or ``None``.

        An explicit crash event names its victim directly (and only fires
        if that client is actually among the candidates); a scheduled
        ``crash_rounds`` entry picks deterministically from the sorted
        candidate list, so every engine agrees on the victim.
        """
        candidates = sorted(set(candidate_ids))
        for event in self.events:
            if event.kind == "crash" and event.round_index == round_index:
                return event.client_id if event.client_id in candidates else None
        if round_index in self.crash_rounds and candidates:
            pick = stable_hash(self.seed, "crash", round_index) % len(candidates)
            return candidates[pick]
        return None

    def actions_for_round(
        self,
        participant_ids: "list[int] | tuple[int, ...]",
        round_index: int,
        deadline: float | None,
    ) -> RoundActions:
        """Resolve the plan against one round's participant list.

        This is the single decision point both engines share: who is
        skipped before dispatch (and why), which dispatched clients carry
        an injected fault, and the round's plan-derived straggler budget.
        """
        actions = RoundActions()
        for client_id in participant_ids:
            event = self.fault_for(client_id, round_index)
            if event is None:
                continue
            if event.kind == "dropout":
                actions.skipped[client_id] = "dropout"
            elif event.kind == "straggler":
                actions.straggler_seconds += event.delay_seconds
                if deadline is not None and event.delay_seconds >= deadline:
                    actions.skipped[client_id] = "straggler"
                else:
                    actions.injected[client_id] = event
            else:  # hang / corrupt execute inside the update
                actions.injected[client_id] = event
        victim = self.crash_victim(
            round_index,
            [cid for cid in participant_ids if cid not in actions.skipped],
        )
        if victim is not None:
            actions.injected[victim] = FaultEvent("crash", round_index, victim)
        return actions


def make_fault_plan(spec: "str | FaultPlan | None") -> FaultPlan | None:
    """Build a :class:`FaultPlan` from a CLI spec string.

    ``None`` and already-built plans pass through unchanged — the same
    convention as :func:`repro.fl.codec.make_codec` and
    :func:`repro.fl.transport.make_transport`, so every API taking a plan
    accepts any of the three forms.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise TypeError(f"fault spec must be a non-empty string, got {spec!r}")
    kwargs: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part or "=" not in part:
            raise ValueError(
                f"bad fault spec item {part!r} in {spec!r}; expected key=value"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "dropout":
                kwargs["dropout_rate"] = float(value)
            elif key == "straggler":
                rate, _, delay = value.partition(":")
                kwargs["straggler_rate"] = float(rate)
                if delay:
                    kwargs["straggler_delay"] = float(delay)
            elif key == "corrupt":
                kwargs["corrupt_rate"] = float(value)
            elif key == "crash":
                kwargs["crash_rounds"] = tuple(
                    int(r) for r in value.split("+") if r
                )
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r} in {spec!r}; expected "
                    f"dropout, straggler, corrupt, crash, or seed"
                )
        except ValueError as exc:
            if "fault spec" in str(exc):
                raise
            raise ValueError(
                f"bad value {value!r} for {key!r} in fault spec {spec!r}"
            ) from exc
    return FaultPlan(**kwargs)


def poison_state(state: dict) -> dict:
    """A corrupted copy of ``state``: the first tensor is all-NaN.

    Used by the ``corrupt`` fault to simulate a damaged upload.  The
    poison is injected *before* the wire codec, so it survives any
    lossless pipeline; detection (:func:`state_is_corrupt`) runs on the
    decoded server-side state, exactly where real validation would sit.
    """
    poisoned = dict(state)
    for key, value in poisoned.items():
        value = np.asarray(value)
        if np.issubdtype(value.dtype, np.floating):
            poisoned[key] = np.full_like(value, np.nan)
            break
    return poisoned


def state_is_corrupt(state: dict) -> bool:
    """Whether any tensor in ``state`` carries a non-finite value — the
    server-side acceptance check engines run on every decoded upload when
    a fault plan is active."""
    return any(
        not np.isfinite(np.asarray(value)).all() for value in state.values()
    )
