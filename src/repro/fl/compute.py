"""Compute backends: how an engine trains a group of co-resident clients.

The execution engines (:mod:`repro.fl.executor`) decide *where* local
updates run (in-process or on a pool worker); a compute backend decides
*how* the clients that landed in one place actually train:

* ``loop`` — the historical per-client loop: load the broadcast weights,
  run :meth:`repro.fl.strategy.Strategy.local_update`, repeat.
* ``ensemble`` — stack the group's K clients along a leading axis
  (:mod:`repro.nn.ensemble`) and run their local epochs as single batched
  matmuls per layer, with one fused SGD step over the whole ``(K, ...)``
  parameter stack.  Requires the strategy to implement
  :meth:`repro.fl.strategy.Strategy.ensemble_update` and every module of
  the model to have an ensemble converter; anything else falls back to the
  loop per group, so the backend is always safe to select.
* ``strict`` — the ensemble code path forced to K=1 groups.  Because
  numpy's batched kernels are bitwise identical per slice, ``strict``
  produces exactly the same bytes as ``ensemble`` for any grouping — it
  exists to *prove* that equivalence in tests and audits, one client at a
  time.

Backends are negotiated like codecs and transports: the registry maps spec
strings to factories, ``auto`` resolves against the model at pool build
(``ensemble`` when every module converts, ``loop`` otherwise), and the
resolved spec ships to workers so both endpoints agree on the compute
semantics before any task is dispatched.

Numerical contract
------------------
Per-client results are *independent of grouping*: slice ``k`` of a K-stack
is bitwise the computation the loop backend runs for that client (see
:mod:`repro.nn.ensemble` for why).  The serial engine may therefore stack
a round's survivors into one group while the parallel engine stacks per
home worker, and their traces stay bit-identical — the invariant the
cross-engine tests in ``tests/test_nn_ensemble.py`` enforce.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.fl.client import Client
from repro.nn.ensemble import ensemble_of, ensemble_supports, load_state_broadcast

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.fl.executor import ClientUpdate
    from repro.fl.strategy import Strategy
    from repro.nn.models import FeatureClassifierModel
    from repro.nn.module import Module
    from repro.nn.serialize import StateDict

__all__ = [
    "COMPUTE_KINDS",
    "ComputeBackend",
    "LoopBackend",
    "EnsembleBackend",
    "register_compute",
    "compute_specs",
    "make_compute",
    "resolve_compute",
    "timed_local_update",
]

#: Accepted ``--compute`` / config values; ``auto`` resolves at pool build.
COMPUTE_KINDS = ("auto", "loop", "ensemble", "strict")


def timed_local_update(
    strategy: "Strategy",
    client: Client,
    model: "FeatureClassifierModel",
    round_index: int,
    seed: int,
) -> "ClientUpdate":
    """Run one local update on ``model`` (already holding the broadcast
    weights) and stamp its wall clock + scratch delta.

    Collecting the delta here — on both engines, through every backend —
    is what makes the ``scratch_delta`` contract engine-invariant: it is
    always a snapshot of the keys this update touched, detached from the
    live scratch dict.
    """
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    update = strategy.local_update(client, model, round_index, rng)
    update.train_seconds = time.perf_counter() - start
    update.scratch_delta = client.scratch.collect_delta()
    return update


class ComputeBackend:
    """Backend contract: train one co-resident group, in group order.

    ``clients`` and ``seeds`` are aligned; ``model`` is the engine's
    workspace/template model and ``wire_state`` the already-decoded
    broadcast weights every client trains from.  Implementations return
    one :class:`repro.fl.executor.ClientUpdate` per client, in the same
    order, each stamped with ``train_seconds`` and its scratch delta.
    """

    name = "compute"
    #: Whether the engine should hand this backend multi-client groups
    #: (one task per home worker) instead of one task per client.
    batched = False

    @property
    def spec(self) -> str:
        return self.name

    def run_group(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        wire_state: "StateDict",
        clients: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> "list[ClientUpdate]":
        raise NotImplementedError


class LoopBackend(ComputeBackend):
    """The historical per-client loop; the default and the fallback."""

    name = "loop"

    def run_group(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        wire_state: "StateDict",
        clients: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> "list[ClientUpdate]":
        updates = []
        for client, seed in zip(clients, seeds):
            model.load_state_dict(wire_state)
            updates.append(
                timed_local_update(strategy, client, model, round_index, seed)
            )
        return updates


class EnsembleBackend(ComputeBackend):
    """Leading-axis batched training over each group's parameter stack.

    Clients are sub-grouped by dataset size (stacking needs a shared batch
    geometry) preserving group order; empty-dataset clients and any group
    the strategy declines (``ensemble_update`` returning ``None``) run
    through the loop path instead.  ``max_group_size=1`` is the ``strict``
    backend: every client becomes a K=1 stack through the identical code
    path, which slice independence makes bit-equal to any larger stack.
    """

    name = "ensemble"
    batched = True
    #: Upper bound on stack size; ``None`` means "the whole group".
    max_group_size: int | None = None

    def __init__(self) -> None:
        #: Ensemble clones, keyed by (architecture fingerprint, stack size).
        #: A worker trains the same resident group round after round, so
        #: rebuilding the stacked module graph every round is pure waste.
        #: Reuse is safe because every use starts with a full
        #: ``load_state_broadcast`` — the clone carries no state between
        #: rounds, only structure — which is also why the fingerprint only
        #: needs to pin the architecture, not the owning model object.
        self._clones: dict[tuple, "Module"] = {}

    def _ensemble_clone(self, model: "FeatureClassifierModel", stack: int):
        fingerprint = tuple(
            (name, param.data.shape) for name, param in model.named_parameters()
        ) + tuple(
            (name, buffer.shape) for name, buffer in model.named_buffers()
        )
        key = (fingerprint, stack)
        clone = self._clones.get(key)
        if clone is None:
            clone = ensemble_of(model, stack)
            self._clones[key] = clone
        return clone

    def run_group(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        wire_state: "StateDict",
        clients: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> "list[ClientUpdate]":
        if not (strategy.supports_ensemble() and ensemble_supports(model)):
            return LoopBackend().run_group(
                strategy, model, wire_state, clients, round_index, seeds
            )
        # Order-preserving sub-grouping by dataset size.
        by_size: dict[int, list[int]] = {}
        for position, client in enumerate(clients):
            by_size.setdefault(client.num_samples, []).append(position)
        results: "list[ClientUpdate | None]" = [None] * len(clients)

        def run_loop(positions: list[int]) -> None:
            singles = LoopBackend().run_group(
                strategy,
                model,
                wire_state,
                [clients[position] for position in positions],
                round_index,
                [seeds[position] for position in positions],
            )
            for position, update in zip(positions, singles):
                results[position] = update

        for num_samples, positions in by_size.items():
            if num_samples == 0:
                # Strategies special-case empty clients before consuming
                # any randomness; keep them on the reference path.
                run_loop(positions)
                continue
            limit = self.max_group_size or len(positions)
            for start in range(0, len(positions), limit):
                chunk = positions[start : start + limit]
                stack = len(chunk)
                emodel = self._ensemble_clone(model, stack)
                load_state_broadcast(emodel, wire_state, stack)
                rngs = [np.random.default_rng(seeds[position]) for position in chunk]
                begin = time.perf_counter()
                updates = strategy.ensemble_update(
                    [clients[position] for position in chunk],
                    emodel,
                    round_index,
                    rngs,
                )
                elapsed = time.perf_counter() - begin
                if updates is None:
                    run_loop(chunk)
                    continue
                # The stack trained as one fused pass; attribute each
                # client an equal share so timing reports stay comparable
                # with the loop backend's per-client clocks.
                share = elapsed / stack
                for position, update in zip(chunk, updates):
                    update.train_seconds = share
                    update.scratch_delta = clients[position].scratch.collect_delta()
                    results[position] = update
        return results  # type: ignore[return-value]


class _StrictBackend(EnsembleBackend):
    name = "strict"
    max_group_size = 1


_BACKENDS: dict[str, Callable[[], ComputeBackend]] = {
    "loop": LoopBackend,
    "ensemble": EnsembleBackend,
    "strict": _StrictBackend,
}


def register_compute(name: str, factory: Callable[[], ComputeBackend]) -> None:
    """Register a compute backend factory under a spec name."""
    _BACKENDS[name] = factory


def compute_specs() -> tuple[str, ...]:
    """The registered concrete backend specs (``auto`` excluded)."""
    return tuple(sorted(_BACKENDS))


def make_compute(spec: "str | ComputeBackend") -> ComputeBackend:
    """Build a backend from its spec string (or pass one through).

    ``auto`` is not buildable — resolve it first against a model with
    :func:`resolve_compute`, like the engines do at pool build.
    """
    if isinstance(spec, ComputeBackend):
        return spec
    factory = _BACKENDS.get(spec)
    if factory is None:
        known = ("auto",) + compute_specs()
        raise ValueError(f"unknown compute backend {spec!r}; expected one of {known}")
    return factory()


def resolve_compute(
    spec: str, model: "FeatureClassifierModel | None" = None
) -> str:
    """Validate a compute spec; resolve ``auto`` against ``model``.

    ``auto`` picks ``ensemble`` when every module of the model has an
    ensemble converter (clients share the architecture by construction —
    the engines broadcast one template), and ``loop`` otherwise.  Without
    a model, ``auto`` stays ``auto`` — configs validate early, engines
    resolve late.
    """
    if spec == "auto":
        if model is None:
            return "auto"
        return "ensemble" if ensemble_supports(model) else "loop"
    if spec not in _BACKENDS:
        known = ("auto",) + compute_specs()
        raise ValueError(f"unknown compute backend {spec!r}; expected one of {known}")
    return spec
