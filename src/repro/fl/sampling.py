"""Client sampling: which subset of clients participates each round.

The paper treats client sampling as a first-class experimental axis
(Fig. 5 and the default 20%/10% participation).  Only clients with data are
eligible; a round never selects more clients than exist.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client

__all__ = ["UniformClientSampler"]


class UniformClientSampler:
    """Sample ``k`` distinct clients uniformly at random each round.

    Parameters
    ----------
    clients_per_round:
        Either an integer count ``K`` or a fraction in (0, 1] of the total
        client count (the paper's ``k%``).  At least one client is always
        selected.
    """

    def __init__(self, clients_per_round: int | float) -> None:
        # Single source of truth for the participation convention: a float
        # (numpy included) is a fraction in (0, 1], an int is a count >= 1.
        # FederatedConfig delegates its validation here.
        if isinstance(clients_per_round, bool) or not isinstance(
            clients_per_round, (int, float, np.integer, np.floating)
        ):
            raise TypeError(
                f"clients_per_round must be an int count or a float "
                f"fraction, got {clients_per_round!r}"
            )
        if isinstance(clients_per_round, (float, np.floating)):
            if not 0.0 < clients_per_round <= 1.0:
                raise ValueError(
                    f"fractional participation must be in (0, 1], "
                    f"got {clients_per_round}"
                )
        elif clients_per_round < 1:
            raise ValueError(
                f"clients_per_round must be >= 1, got {clients_per_round}"
            )
        self.clients_per_round = clients_per_round

    def round_size(self, num_clients: int) -> int:
        """Resolve the per-round participant count for ``num_clients``."""
        if isinstance(self.clients_per_round, (float, np.floating)):
            k = int(round(self.clients_per_round * num_clients))
        else:
            k = int(self.clients_per_round)
        return max(1, min(k, num_clients))

    def sample(
        self, clients: list[Client], rng: np.random.Generator
    ) -> list[Client]:
        """Select this round's participants (non-empty clients only)."""
        eligible = [c for c in clients if c.num_samples > 0]
        if not eligible:
            raise ValueError("no client has any data")
        k = self.round_size(len(eligible))
        chosen = rng.choice(len(eligible), size=k, replace=False)
        return [eligible[int(i)] for i in chosen]

    def sample_ids(self, num_clients: int, rng: np.random.Generator) -> list[int]:
        """Select a round's participant *ids* from ``range(num_clients)``
        without materializing the population.

        Floyd's sampling algorithm: ``k`` distinct ids in O(k) time and
        memory however large ``num_clients`` is — the lazy-population
        path (:class:`repro.fl.population.LazyPopulation`) uses this so a
        100k-client round touches only the sampled participants.  Ids are
        returned sorted, so the round's participant order is a pure
        function of the draw (not of set-insertion order).
        """
        if num_clients < 1:
            raise ValueError("no client has any data")
        k = self.round_size(num_clients)
        chosen: set[int] = set()
        for j in range(num_clients - k, num_clients):
            t = int(rng.integers(0, j + 1))
            chosen.add(j if t in chosen else t)
        return sorted(chosen)
