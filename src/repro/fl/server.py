"""The federated simulation loop.

:class:`FederatedServer` wires together a strategy, a client population, a
sampler, an execution engine, and evaluation sets, and runs the round loop
the paper describes: sample k of N clients, broadcast the global weights,
run the strategy's local update on each participant (serially or fanned out
to worker processes — see :mod:`repro.fl.executor`), aggregate in
deterministic client order, and periodically evaluate on the held-out
(unseen-domain) sets.  All timing flows through
:class:`repro.fl.timing.PhaseTimer` so Fig. 4 can compare methods fairly
regardless of the engine.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import LabeledDataset
from repro.fl.aggregate import EdgeAggregator, make_aggregator
from repro.fl.evaluation import evaluate_accuracy
from repro.fl.client import Client
from repro.fl.codec import make_codec
from repro.fl.compute import resolve_compute
from repro.fl.executor import Executor, SerialExecutor
from repro.fl.faults import make_deadline_policy, make_fault_plan
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.population import ClientPopulation, ListPopulation, as_population
from repro.fl.sampling import UniformClientSampler
from repro.fl.strategy import Strategy
from repro.fl.timing import PhaseTimer, TimingReport
from repro.fl.transport import resolve_transport
from repro.nn.models import FeatureClassifierModel
from repro.utils.logging import get_logger, kv
from repro.utils.rng import SeedTree

__all__ = [
    "FederatedConfig",
    "FederatedServer",
    "FederatedResult",
    "parse_topology",
]

_LOG = get_logger("fl.server")


def parse_topology(topology: str) -> int | None:
    """Validate an aggregation-topology spec.

    ``"flat"`` (the historical single-tier reduction) returns ``None``;
    ``"edge:G"`` returns the edge-aggregator group count ``G >= 1``.
    Anything else raises ``ValueError`` — shared by config validation and
    the CLI's parse-time check.
    """
    if not isinstance(topology, str):
        raise TypeError(f"topology must be a string, got {topology!r}")
    if topology == "flat":
        return None
    if topology.startswith("edge:"):
        try:
            groups = int(topology[len("edge:"):])
        except ValueError as exc:
            raise ValueError(
                f"bad edge group count in topology {topology!r}"
            ) from exc
        if groups < 1:
            raise ValueError(
                f"edge group count must be >= 1, got {topology!r}"
            )
        return groups
    raise ValueError(
        f"unknown topology {topology!r}; expected 'flat' or 'edge:G'"
    )


@dataclass(frozen=True)
class FederatedConfig:
    """Round-loop parameters (paper §IV-A defaults, scaled by the benches).

    ``clients_per_round`` follows the sampler's convention: an ``int`` is an
    absolute participant count (>= 1), a ``float`` is the participation
    fraction in (0, 1].

    ``codec`` names the wire codec for weight payloads (see
    :mod:`repro.fl.codec`): it configures the server-owned default engine,
    and a caller-supplied engine must already carry the same codec — the
    codec changes what clients train from (for lossy specs) and so belongs
    to the experiment definition, not just the transport.

    ``transport`` names the wire transport for broadcast blobs (see
    :mod:`repro.fl.transport`); engines built from this config (the
    protocol runners thread it into :func:`repro.fl.executor.make_executor`)
    carry it.  Unlike the codec it is *not* cross-checked against a
    caller-supplied engine: the transport moves byte-identical blobs and
    cannot change what clients train from, so mixing (say) a pipe-transport
    pool into an ``"auto"`` config is mechanically harmless.

    ``faults`` names a deterministic fault-injection plan
    (:mod:`repro.fl.faults` spec string, e.g.
    ``"dropout=0.1,straggler=0.25:0.05,crash=2,seed=7"``) and ``deadline``
    a per-round wall-clock budget — seconds, or an adaptive spec such as
    ``"percentile:p95"`` (see :func:`repro.fl.faults.make_deadline_policy`);
    both change *who survives a round* and therefore belong to the
    experiment definition, so — like the codec — a caller-supplied engine
    must agree with them (checked at server construction).  ``quorum``
    closes a round early once that many uploads arrived (remaining
    participants are dropped as ``"quorum"``); like the deadline it is
    cross-checked against a caller-supplied engine.

    ``aggregator`` names the server-side aggregation rule
    (:mod:`repro.fl.aggregate` spec string, e.g. ``"median"``,
    ``"clip(5)+krum"``).  The default ``"mean"`` is the historical
    weighted FedAvg reduction, bit for bit.  A non-default spec is
    installed onto the strategy at server construction; a strategy that
    already carries its own non-mean rule must agree with the config.

    ``compute`` names the compute backend (:mod:`repro.fl.compute`) that
    trains each co-resident client group: ``"auto"`` (default) resolves to
    the batched ``ensemble`` backend when the model supports it, and
    ``"loop"``/``"ensemble"``/``"strict"`` force one.  Per-client numerics
    are bitwise backend-invariant, so this is a throughput knob — but a
    pinned spec on the config must match a caller-supplied engine, like
    the codec, so experiment records say what actually ran.
    """

    num_rounds: int = 10
    clients_per_round: int | float = 0.2
    eval_every: int = 1
    seed: int = 0
    codec: str = "identity"
    transport: str = "auto"
    faults: str | None = None
    deadline: float | str | None = None
    compute: str = "auto"
    aggregator: str = "mean"
    quorum: int | None = None
    topology: str = "flat"

    def __post_init__(self) -> None:
        if self.num_rounds < 1:
            raise ValueError(f"num_rounds must be >= 1, got {self.num_rounds}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        # Deadline validation (seconds > 0, or a known adaptive spec) lives
        # with the policy maker.
        make_deadline_policy(self.deadline)
        if self.quorum is not None and self.quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {self.quorum}")
        # Aggregation-rule spec: fail at config time, not mid-run.
        make_aggregator(self.aggregator)
        # ...and the topology spec, plus its compatibility with the rule —
        # an edge topology needs a streaming-capable rule, and finding
        # that out mid-run would waste the whole run.
        groups = parse_topology(self.topology)
        if groups is not None:
            EdgeAggregator(groups, make_aggregator(self.aggregator))
        # Participation validation lives with the sampler (the single source
        # of truth for the count-vs-fraction convention); constructing one
        # surfaces bad values at config time with the sampler's own errors.
        # An integer ``clients_per_round`` is an absolute participant count
        # however large the population is (it never re-enters the
        # float-fraction path), so a quorum above it can *never* be met —
        # reject it here, not mid-round.
        UniformClientSampler(self.clients_per_round)
        if (
            self.quorum is not None
            and not isinstance(self.clients_per_round, (float, np.floating))
            and self.quorum > int(self.clients_per_round)
        ):
            raise ValueError(
                f"quorum {self.quorum} exceeds clients_per_round "
                f"{int(self.clients_per_round)}; no round could ever close"
            )
        # Same pattern for the codec spec: fail at config time, not mid-run.
        make_codec(self.codec)
        # ...and the transport spec ("auto" resolves per platform)...
        resolve_transport(self.transport)
        # ...and the fault-plan spec...
        make_fault_plan(self.faults)
        # ...and the compute-backend spec ("auto" resolves per model).
        resolve_compute(self.compute)


@dataclass
class FederatedResult:
    """Everything a benchmark needs from one run."""

    history: RunHistory
    final_state: dict
    timing: TimingReport
    final_accuracy: dict[str, float] = field(default_factory=dict)


class FederatedServer:
    """Run one federated experiment for one strategy.

    Parameters
    ----------
    strategy:
        The FedDG method under test.
    clients:
        The full client population (the sampler draws from it each round).
    model:
        The global model instance.  The serial engine reuses it as the
        local-training workspace (weights are loaded per participant, so
        state never leaks between clients through the model object); the
        parallel engine treats it as the architecture template for the
        per-worker clones.
    eval_sets:
        Named held-out datasets (e.g. ``{"val": ..., "test": ...}``) that the
        server evaluates the *global* model on — unseen domains in the
        paper's protocols.
    config:
        Round-loop parameters.
    executor:
        Client-execution engine; defaults to a fresh
        :class:`repro.fl.executor.SerialExecutor` carrying
        ``config.codec``.  Engines created by the caller are left open
        after :meth:`run` (so one pool can serve many runs) but must agree
        with ``config.codec`` — a mismatch would silently change what
        clients train from, so it is rejected at construction.
    """

    def __init__(
        self,
        strategy: Strategy,
        clients: "list[Client] | ClientPopulation",
        model: FeatureClassifierModel,
        eval_sets: dict[str, LabeledDataset],
        config: FederatedConfig,
        executor: Executor | None = None,
    ) -> None:
        # ``clients`` may be the historical explicit list or any
        # ClientPopulation — a LazyPopulation keeps the server's footprint
        # at O(participants) however large the simulated population is.
        self.population = as_population(clients)
        if len(self.population) == 0:
            raise ValueError("need at least one client")
        self.strategy = strategy
        #: Materialized client list for strategy.prepare and legacy
        #: callers; empty for lazy populations (whose whole point is never
        #: materializing — strategies with a population-wide prepare step
        #: need a ListPopulation).
        self.clients = (
            self.population.clients
            if isinstance(self.population, ListPopulation)
            else []
        )
        self.model = model
        self.eval_sets = eval_sets
        self.config = config
        self._owns_executor = executor is None
        self.executor = executor or SerialExecutor(
            codec=config.codec, faults=config.faults,
            deadline=config.deadline, compute=config.compute,
            quorum=config.quorum,
        )
        if self.executor.codec.spec != make_codec(config.codec).spec:
            raise ValueError(
                f"executor carries codec {self.executor.codec.spec!r} but "
                f"the config asks for {config.codec!r}; build the engine "
                f"with the config's codec (make_executor(..., codec=...))"
            )
        # Faults and deadlines change who survives a round, so a config
        # that asks for them must not be paired with an engine that won't
        # apply them (the reverse — engine-level chaos under a plain
        # config — is a deliberate testing pattern and stays allowed).
        if config.faults is not None and (
            self.executor.fault_plan != make_fault_plan(config.faults)
        ):
            raise ValueError(
                f"executor carries fault plan {self.executor.fault_plan!r} "
                f"but the config asks for {config.faults!r}; build the "
                f"engine with the config's plan (make_executor(..., "
                f"faults=...))"
            )
        if config.deadline is not None and (
            self.executor.deadline_policy != make_deadline_policy(config.deadline)
        ):
            raise ValueError(
                f"executor carries deadline "
                f"{self.executor.deadline_policy!r} but the config asks for "
                f"{config.deadline!r}; build the engine with the config's "
                f"deadline (make_executor(..., deadline=...))"
            )
        if config.quorum is not None and self.executor.quorum != config.quorum:
            raise ValueError(
                f"executor carries quorum {self.executor.quorum!r} but the "
                f"config asks for {config.quorum!r}; build the engine with "
                f"the config's quorum (make_executor(..., quorum=...))"
            )
        # A pinned compute spec is part of the experiment record: the
        # result is bitwise the same either way, but "what ran" must not
        # silently diverge from what the config claims.  ``auto`` on the
        # config accepts any engine — resolution happens at pool build.
        if config.compute != "auto" and self.executor.compute != config.compute:
            raise ValueError(
                f"executor carries compute backend {self.executor.compute!r} "
                f"but the config asks for {config.compute!r}; build the "
                f"engine with the config's backend (make_executor(..., "
                f"compute=...))"
            )
        # The aggregation rule belongs to the experiment definition; a
        # non-default config spec is installed onto a default-``mean``
        # strategy so CLI/protocol paths need no constructor plumbing, but
        # a strategy already carrying a different non-mean rule is a
        # conflict, not something to silently overwrite.
        if config.aggregator != "mean":
            wanted = make_aggregator(config.aggregator)
            if self.strategy.aggregator.spec == "mean":
                self.strategy.aggregator = wanted
            elif self.strategy.aggregator.spec != wanted.spec:
                raise ValueError(
                    f"strategy carries aggregator "
                    f"{self.strategy.aggregator.spec!r} but the config asks "
                    f"for {config.aggregator!r}; drop one of the two"
                )
        # A two-tier topology wraps whatever rule ended up installed in an
        # EdgeAggregator (construction re-checks that the rule streams).
        groups = parse_topology(config.topology)
        if groups is not None:
            current = self.strategy.aggregator
            if isinstance(current, EdgeAggregator):
                if current.groups != groups:
                    raise ValueError(
                        f"strategy carries edge topology with "
                        f"{current.groups} groups but the config asks for "
                        f"{config.topology!r}; drop one of the two"
                    )
            else:
                self.strategy.aggregator = EdgeAggregator(groups, current)
        self.sampler = UniformClientSampler(config.clients_per_round)
        # With the population known, the per-round participant count is
        # resolved — an unreachable quorum (fractional participation, tiny
        # population) fails here instead of timing out mid-round.
        participants_per_round = self.sampler.round_size(len(self.population))
        if config.quorum is not None and config.quorum > participants_per_round:
            raise ValueError(
                f"quorum {config.quorum} exceeds the resolved per-round "
                f"participant count {participants_per_round} (population "
                f"{len(self.population)}); no round could ever close"
            )
        self._seed_tree = SeedTree(config.seed).child("server", strategy.name)

    def run(self, verbose: bool = False) -> FederatedResult:
        """Execute the configured number of rounds; return the full trace."""
        try:
            return self._run(verbose)
        finally:
            if self._owns_executor:
                self.executor.close()

    def _run(self, verbose: bool) -> FederatedResult:
        timer = PhaseTimer()
        history = RunHistory(strategy_name=self.strategy.name)
        global_state = self.model.state_dict()

        with timer.one_time():
            self.strategy.prepare(
                self.clients, self.model, self._seed_tree.generator("prepare")
            )
            # prepare() may have touched the workspace model; restore.
            self.model.load_state_dict(global_state)

        # Engine wire counters are cumulative across runs (a warm pool may
        # serve many); diff them per round so the report covers this run.
        wire_before = self.executor.wire_stats()

        for round_index in range(self.config.num_rounds):
            round_rng = self._seed_tree.generator("sample", round_index)
            participants = self.population.sample(self.sampler, round_rng)
            seeds = [
                self._seed_tree.seed(
                    "client", client.client_id, "round", round_index
                )
                for client in participants
            ]

            # Streaming aggregation (mean and its clip/edge compositions):
            # the engine folds each accepted upload into the stream as it
            # arrives and frees it, so aggregation overlaps collection and
            # the server never materializes the survivor list.  ``None``
            # (order statistics, strategies with their own aggregate)
            # keeps the batch path.
            stream = self.strategy.begin_stream(global_state)

            wall_start = time.perf_counter()
            updates = self.executor.run_round(
                self.strategy,
                self.model,
                global_state,
                participants,
                round_index,
                seeds,
                stream=stream,
            )
            timer.record_local_wall(time.perf_counter() - wall_start)
            for update in updates:
                timer.record_local_train(update.train_seconds)
                timer.record_broadcast_decode(update.decode_seconds)
            # Cross-host pipelining win (nonzero only for the remote
            # engine's pipelined rounds): remote busy time that overlapped
            # other hosts' broadcast/train/upload.
            timer.record_pipeline_overlap(self.executor.last_overlap_seconds)
            # What the fault layer did to the round: recorded on the round
            # history (who dropped, and why) and folded into the timing
            # report's robustness counters.  Aggregation below reweights
            # over the survivors automatically — ``updates`` only ever
            # holds the clients that responded in time with sane weights.
            fault_report = self.executor.last_fault_report
            dropped = dict(fault_report.dropped) if fault_report else {}
            if fault_report is not None:
                timer.record_faults(
                    dropped_clients=len(fault_report.dropped),
                    straggler_seconds=fault_report.straggler_seconds,
                    rebuilt_workers=fault_report.rebuilt_workers,
                )
                timer.record_robustness(
                    early_closed_rounds=1 if fault_report.early_closed else 0,
                    early_close_seconds=fault_report.early_close_seconds,
                )
            wire_now = self.executor.wire_stats()
            timer.record_bytes(
                wire_now.bytes_up - wire_before.bytes_up,
                wire_now.bytes_down - wire_before.bytes_down,
                wire_now.unique_bytes_down - wire_before.unique_bytes_down,
            )
            wire_before = wire_now

            with timer.aggregation():
                # The kwarg only exists on the base ``aggregate`` — and a
                # stream only exists when that base is what runs
                # (supports_streaming), so overriding strategies never see
                # it.
                if stream is not None:
                    global_state = self.strategy.aggregate(
                        global_state, updates, round_index, stream=stream
                    )
                else:
                    global_state = self.strategy.aggregate(
                        global_state, updates, round_index
                    )
            timer.record_robustness(
                rejected_uploads=len(self.strategy.aggregator.last_rejected)
            )
            if tracemalloc.is_tracing():
                # One peak sample per round (the CLI's --timing starts
                # tracing); the report keeps the maximum across rounds.
                timer.record_peak_memory(tracemalloc.get_traced_memory()[1])

            losses = [update.loss for update in updates]
            record = RoundRecord(
                round_index=round_index,
                mean_local_loss=float(np.mean(losses)) if losses else 0.0,
                participants=[c.client_id for c in participants],
                dropped=dropped,
                accepted=(
                    [update.client_id for update in updates]
                    if self.executor.records_accepted
                    else None
                ),
            )
            is_last = round_index == self.config.num_rounds - 1
            if is_last or (round_index + 1) % self.config.eval_every == 0:
                self.model.load_state_dict(global_state)
                for name, dataset in self.eval_sets.items():
                    record.eval_accuracy[name] = evaluate_accuracy(
                        self.model, dataset
                    )
            history.add(record)
            self.population.release(participants)
            if verbose:
                _LOG.info(
                    kv(
                        {
                            "strategy": self.strategy.name,
                            "round": round_index,
                            "loss": record.mean_local_loss,
                            **(
                                {"dropped": len(record.dropped)}
                                if record.dropped
                                else {}
                            ),
                            **record.eval_accuracy,
                        }
                    )
                )

        self.model.load_state_dict(global_state)
        # The last round always evaluates every eval set (is_last above), so
        # its record *is* the final accuracy — don't pay for the same forward
        # passes twice.
        last_record = history.records[-1]
        if set(last_record.eval_accuracy) == set(self.eval_sets):
            final_accuracy = dict(last_record.eval_accuracy)
        else:  # pragma: no cover - defensive, e.g. future cadence changes
            final_accuracy = {
                name: evaluate_accuracy(self.model, dataset)
                for name, dataset in self.eval_sets.items()
            }
        return FederatedResult(
            history=history,
            final_state=global_state,
            timing=timer.report(),
            final_accuracy=final_accuracy,
        )
