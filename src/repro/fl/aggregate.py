"""Robust server-side aggregation: how client uploads become the next
global state.

PARDON's title promises *robust* federated DG, and :mod:`repro.fl.faults`
(PR 5) delivered the mechanical half — crashes, stragglers, corrupted
uploads.  This module is the adversarial half: a registry of
Byzantine-robust aggregation rules, mirroring the codec / transport /
compute registries, resolved at config time and routed through
:meth:`repro.fl.strategy.Strategy.aggregate` so every strategy (FedAvg,
FPL, PARDON, ...) inherits the chosen rule.

Rules
-----
``mean``
    The historical path: data-size-weighted FedAvg via
    :func:`repro.nn.serialize.average_states`.  Bit-identical to every
    prior release, and the default everywhere.  Breakdown point 0: one
    adversarial upload steers the result arbitrarily.
``median``
    Coordinate-wise median over the uploads (weights ignored — the median
    is an order statistic).  Breakdown point 1/2: correct while fewer than
    half the uploads are adversarial, per coordinate.
``trimmed_mean(k)``
    Per coordinate, drop the ``k`` largest and ``k`` smallest values and
    average the rest (``k`` clamped to ``(n-1)//2`` so something always
    remains).  Robust to ``k`` adversarial uploads per coordinate.
``krum`` / ``krum(f)``
    Select the single upload minimizing the summed squared distance to its
    ``n - f - 2`` nearest neighbours (Blanchard et al., NeurIPS 2017).
    Requires ``n >= 2f + 3`` for its guarantee — roughly ``f < n/3``
    adversaries; ``f`` defaults to the largest tolerable ``(n-3)//2``.
``multi-krum(m)`` / ``multi-krum(m, f)``
    Krum-score all uploads, keep the best ``m``, and weighted-average the
    keepers — smoother than single-selection Krum, same ``f < n/3``-style
    guarantee.
``clip(tau)+<rule>``
    Composable prefix (the codec registry's ``+`` idiom): norm-clip each
    upload's *update* (its delta from the broadcast state) to L2 norm
    ``tau`` before handing the uploads to the wrapped rule.  Bounds any
    single upload's pull even under ``mean``.
``edge(G)+<rule>``
    Two-tier hierarchical topology (``--topology edge:G``): ``G`` edge
    aggregators each reduce their group of uploads with the wrapped
    rule's *streaming* form, and the root composes the partial
    (sum, weight) pairs.  Weighted means compose exactly across tiers,
    so the result is bit-identical to the flat rule; the wrapped rule
    must be streaming-capable (``mean``, optionally behind ``clip``).

Streaming
---------
Rules that are online-reducible set :attr:`Aggregator.streaming` and
implement :meth:`Aggregator.begin_stream`, which returns an
:class:`AggregationStream`: the engine folds each upload in as it
arrives (``fold(state, weight, position)``) and frees it, and the server
finalizes — constant memory in the number of participants, and
aggregation work overlapped with upload collection.  ``mean`` (and
``clip(tau)+mean``, and ``edge(G)+...``) stream; ``median`` /
``trimmed_mean`` / ``krum`` are order statistics over the full upload
set and explicitly declare themselves non-streaming — they fall back to
the batch path that materializes the survivor list.

Determinism contract
--------------------
Aggregation sits on the determinism-critical path (the cross-engine trace
tests compare it bit-for-bit), so every rule is a pure function of the
upload *multiset* — no RNG, no wall clock.  ``mean`` is defined as the
compensated (double-double) weighted reduction of
:class:`repro.nn.serialize.MeanAccumulator`, which is fold-order- and
grouping-invariant to ~106 bits: batch, streaming-in-arrival-order, and
two-tier ``edge`` reductions all produce the same float64 bits, which is
what lets the parallel engine fold uploads in nondeterministic arrival
order without breaking trace identity.  The hypothesis tests pin the
permutation/grouping invariance down.

Selection rules publish which uploads they excluded in
:attr:`Aggregator.last_rejected` (indices into the round's update list);
the server folds the count into
:attr:`repro.fl.timing.TimingReport.rejected_uploads`.
"""

from __future__ import annotations

import re
from typing import Callable, Sequence

import numpy as np

from repro.nn.serialize import (
    MeanAccumulator,
    StateDict,
    average_states,
    flatten_state,
)

__all__ = [
    "AGGREGATOR_KINDS",
    "AggregationStream",
    "Aggregator",
    "MeanAggregator",
    "MedianAggregator",
    "TrimmedMeanAggregator",
    "KrumAggregator",
    "ClipAggregator",
    "EdgeAggregator",
    "aggregator_specs",
    "make_aggregator",
    "register_aggregator",
]

#: Registered base rules (the ``clip(tau)+`` prefix composes with any;
#: ``edge(G)+`` composes with streaming-capable ones).
AGGREGATOR_KINDS = ("mean", "median", "trimmed_mean", "krum", "multi-krum")


class AggregationStream:
    """One in-flight streaming reduction.

    Created by :meth:`Aggregator.begin_stream`; the execution engine calls
    :meth:`fold` once per accepted upload — *in arrival order*, then frees
    the upload's state — and the server calls :meth:`finalize` once.
    ``position`` is the upload's stable index in the round's sampling
    order (what routes it to an edge group); arrival order itself carries
    no meaning, by the order-invariance contract of the underlying
    compensated reduction.
    """

    #: Number of uploads folded in so far.
    count = 0

    def fold(self, state: StateDict, weight: float, position: int = 0) -> None:
        raise NotImplementedError

    def finalize(self) -> StateDict:
        """The aggregate of everything folded; raises if nothing was."""
        raise NotImplementedError


class _MeanStream(AggregationStream):
    """Streaming form of ``mean``: one compensated accumulator.

    The batch path falls back to uniform weights when every survivor
    weighs zero (an all-empty-client round); the stream mirrors that with
    a shadow accumulator folding each state at weight 1.0 for as long as
    the real weights are all zero.  The first positive weight makes the
    fallback unreachable (weights are non-negative sample counts, so the
    total is now > 0) and drops the shadow — memory stays constant.
    """

    def __init__(self, aggregator: "Aggregator") -> None:
        self._aggregator = aggregator
        self.partial = MeanAccumulator()
        self.uniform: MeanAccumulator | None = MeanAccumulator()

    @property
    def count(self) -> int:  # type: ignore[override]
        return self.partial.count

    def fold(self, state: StateDict, weight: float, position: int = 0) -> None:
        if self.uniform is not None:
            if weight > 0:
                self.uniform = None
            else:
                self.uniform.fold(state, 1.0)
        self.partial.fold(state, weight)

    def finalize(self) -> StateDict:
        self._aggregator.last_rejected = ()
        if self.uniform is not None and self.uniform.count:
            return self.uniform.finalize()
        return self.partial.finalize()


class _ClipStream(AggregationStream):
    """Streaming form of ``clip(tau)+<inner>``: clip each upload against
    the broadcast ``ref`` as it arrives, then fold into the inner stream."""

    def __init__(self, aggregator: "ClipAggregator", ref: StateDict | None) -> None:
        self._aggregator = aggregator
        self._ref = ref
        self._clipped = 0
        self._inner = aggregator.inner.begin_stream(ref)

    @property
    def count(self) -> int:  # type: ignore[override]
        return self._inner.count

    @property
    def partial(self) -> MeanAccumulator:
        return self._inner.partial  # type: ignore[attr-defined]

    @property
    def uniform(self) -> MeanAccumulator | None:
        return self._inner.uniform  # type: ignore[attr-defined]

    def fold(self, state: StateDict, weight: float, position: int = 0) -> None:
        shrunk, was_clipped = self._aggregator.clip_one(state, self._ref)
        self._clipped += was_clipped
        self._inner.fold(shrunk, weight, position)

    def finalize(self) -> StateDict:
        result = self._inner.finalize()
        self._aggregator.last_clipped = self._clipped
        self._aggregator.last_rejected = ()
        return result


class _EdgeStream(AggregationStream):
    """Streaming form of ``edge(G)+<inner>``: ``G`` independent inner
    streams (one per edge aggregator), composed exactly at the root."""

    def __init__(self, aggregator: "EdgeAggregator", ref: StateDict | None) -> None:
        self._aggregator = aggregator
        self._groups = [
            aggregator.inner.begin_stream(ref) for _ in range(aggregator.groups)
        ]

    @property
    def count(self) -> int:  # type: ignore[override]
        return sum(stream.count for stream in self._groups)

    def fold(self, state: StateDict, weight: float, position: int = 0) -> None:
        self._groups[position % len(self._groups)].fold(state, weight, position)

    def finalize(self) -> StateDict:
        active = [stream for stream in self._groups if stream.count]
        clipped = sum(getattr(stream, "_clipped", 0) for stream in active)
        total = sum(stream.partial.total_weight() for stream in active)
        root = MeanAccumulator()
        if active and total <= 0:
            # Every folded weight was zero: compose the groups' uniform
            # shadows so two-tier matches the flat uniform fallback.
            for stream in active:
                root.merge(stream.uniform)
        else:
            for stream in active:
                root.merge(stream.partial)
        self._aggregator.last_clipped = clipped
        self._aggregator.last_rejected = ()
        return root.finalize()


class Aggregator:
    """One server-side aggregation rule.

    ``aggregate`` consumes the round's decoded upload states (immutable —
    possibly read-only zero-copy views) with their raw sample-count
    weights, plus the broadcast ``ref`` state the round trained from
    (``clip`` measures deltas against it), and returns a freshly allocated
    next global state.

    ``robust`` marks rules with a nonzero breakdown point; strategy-level
    side channels (FPL's prototype fusion) consult it to harden their own
    aggregation the same way.
    """

    name = "aggregator"
    #: Whether the rule survives adversarial uploads (breakdown point > 0).
    robust = False
    #: Whether the rule is online-reducible (supports :meth:`begin_stream`).
    #: Order statistics (median, trimmed mean, krum) need the full upload
    #: set and stay ``False`` — they fall back to the batch path.
    streaming = False

    def __init__(self) -> None:
        #: Indices (into the last call's upload list) excluded outright.
        self.last_rejected: tuple[int, ...] = ()
        #: Uploads the last call norm-clipped (``clip`` prefix only).
        self.last_clipped: int = 0

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through make_aggregator)."""
        return self.name

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        ref: StateDict | None = None,
    ) -> StateDict:
        raise NotImplementedError

    def begin_stream(self, ref: StateDict | None = None) -> AggregationStream:
        """Open a streaming reduction (only when :attr:`streaming`).

        ``ref`` is the broadcast state the round trained from, for rules
        that measure uploads against it (``clip``).
        """
        raise NotImplementedError(
            f"aggregator {self.spec!r} is not streaming-capable"
        )

    def reduce_vectors(self, matrix: np.ndarray) -> np.ndarray:
        """Robustly fuse row vectors (strategy side channels, e.g. FPL's
        per-class prototypes): the plain mean for the historical rule, the
        coordinate-wise median — breakdown point 1/2 — for robust ones."""
        if self.robust:
            return np.median(matrix, axis=0)
        return matrix.mean(axis=0)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Aggregator) and other.spec == self.spec

    def __hash__(self) -> int:
        return hash(self.spec)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"


class MeanAggregator(Aggregator):
    """Weighted FedAvg — bit-identical to
    :func:`repro.nn.serialize.average_states` (paper §III-B), and the
    only base rule that streams."""

    name = "mean"
    streaming = True

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        ref: StateDict | None = None,
    ) -> StateDict:
        self.last_rejected = ()
        return average_states(states, weights)

    def begin_stream(self, ref: StateDict | None = None) -> AggregationStream:
        return _MeanStream(self)


class MedianAggregator(Aggregator):
    """Coordinate-wise median (weights ignored: an order statistic)."""

    name = "median"
    robust = True

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        ref: StateDict | None = None,
    ) -> StateDict:
        self.last_rejected = ()
        if not states:
            raise ValueError("need at least one state to aggregate")
        result: StateDict = {}
        for key in sorted(states[0]):
            stacked = np.stack([np.asarray(state[key]) for state in states])
            value = np.median(stacked, axis=0)
            result[key] = value.astype(stacked.dtype, copy=False)
        return result


class TrimmedMeanAggregator(Aggregator):
    """Per coordinate, drop the ``k`` smallest and ``k`` largest values
    and average the remainder.  ``k`` is clamped to ``(n-1)//2`` so at
    least one value always survives the trim."""

    name = "trimmed_mean"
    robust = True

    def __init__(self, k: int = 1) -> None:
        super().__init__()
        if k < 0:
            raise ValueError(f"trimmed_mean k must be >= 0, got {k}")
        self.k = int(k)

    @property
    def spec(self) -> str:
        return f"trimmed_mean({self.k})"

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        ref: StateDict | None = None,
    ) -> StateDict:
        self.last_rejected = ()
        if not states:
            raise ValueError("need at least one state to aggregate")
        count = len(states)
        k = min(self.k, (count - 1) // 2)
        result: StateDict = {}
        for key in sorted(states[0]):
            stacked = np.stack([np.asarray(state[key]) for state in states])
            if k == 0:
                value = stacked.mean(axis=0)
            else:
                value = np.sort(stacked, axis=0)[k : count - k].mean(axis=0)
            result[key] = value.astype(stacked.dtype, copy=False)
        return result


class KrumAggregator(Aggregator):
    """(Multi-)Krum selection (Blanchard et al., NeurIPS 2017).

    Each upload is scored by the summed squared L2 distance to its
    ``n - f - 2`` nearest peers; the ``m`` lowest-scoring uploads are kept
    (``m=1`` is classic Krum — the winner is returned verbatim; ``m>1``
    weighted-averages the keepers).  ``f`` is the number of Byzantine
    uploads to tolerate; when ``None`` it defaults to the largest value
    the guarantee admits, ``(n-3)//2``.  Ties break by upload position,
    stably, so the selection is deterministic.
    """

    robust = True

    def __init__(self, m: int = 1, f: int | None = None) -> None:
        super().__init__()
        if m < 1:
            raise ValueError(f"multi-krum m must be >= 1, got {m}")
        if f is not None and f < 0:
            raise ValueError(f"krum f must be >= 0, got {f}")
        self.m = int(m)
        self.f = None if f is None else int(f)

    @property
    def name(self) -> str:  # type: ignore[override]
        return "krum" if self.m == 1 else "multi-krum"

    @property
    def spec(self) -> str:
        args = [] if self.m == 1 else [str(self.m)]
        if self.f is not None:
            args.append(str(self.f))
        return self.name + (f"({', '.join(args)})" if args else "")

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        ref: StateDict | None = None,
    ) -> StateDict:
        if not states:
            raise ValueError("need at least one state to aggregate")
        count = len(states)
        keep = min(self.m, count)
        if count <= keep:
            self.last_rejected = ()
            chosen = list(range(count))
        else:
            f = self.f if self.f is not None else max(0, (count - 3) // 2)
            vectors = np.stack(
                [flatten_state(state).astype(np.float64) for state in states]
            )
            squared = ((vectors[:, None, :] - vectors[None, :, :]) ** 2).sum(
                axis=2
            )
            neighbours = max(1, count - f - 2)
            scores = np.array(
                [
                    np.sort(np.delete(squared[i], i))[:neighbours].sum()
                    for i in range(count)
                ]
            )
            order = np.argsort(scores, kind="stable")
            chosen = sorted(int(i) for i in order[:keep])
            self.last_rejected = tuple(
                i for i in range(count) if i not in set(chosen)
            )
        if len(chosen) == 1:
            state = states[chosen[0]]
            return {key: np.array(value) for key, value in state.items()}
        return average_states(
            [states[i] for i in chosen], [weights[i] for i in chosen]
        )


def _state_norm(state: StateDict, ref: StateDict | None) -> float:
    """L2 norm of ``state`` (or of ``state - ref`` when a reference is
    given), over floating tensors only."""
    total = 0.0
    for key in sorted(state):
        value = np.asarray(state[key])
        if not np.issubdtype(value.dtype, np.floating):
            continue
        delta = value if ref is None else value - np.asarray(ref[key])
        total += float(np.square(delta, dtype=np.float64).sum())
    return float(np.sqrt(total))


class ClipAggregator(Aggregator):
    """Norm-clipping prefix: bound each upload's update (its delta from
    the broadcast ``ref``) to L2 norm ``tau``, then delegate to the
    wrapped rule.  With no ``ref`` the state's own norm is clipped."""

    def __init__(self, tau: float, inner: Aggregator) -> None:
        super().__init__()
        if tau <= 0:
            raise ValueError(f"clip tau must be > 0, got {tau}")
        self.tau = float(tau)
        self.inner = inner
        self.robust = inner.robust

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def spec(self) -> str:
        return f"clip({self.tau:g})+{self.inner.spec}"

    @property
    def streaming(self) -> bool:  # type: ignore[override]
        return self.inner.streaming

    def reduce_vectors(self, matrix: np.ndarray) -> np.ndarray:
        return self.inner.reduce_vectors(matrix)

    def clip_one(self, state: StateDict, ref: StateDict | None) -> tuple[StateDict, bool]:
        """One upload clipped against ``ref``; True when it shrank."""
        norm = _state_norm(state, ref)
        if norm <= self.tau:
            return state, False
        scale = self.tau / norm
        shrunk: StateDict = {}
        for key, value in state.items():
            value = np.asarray(value)
            if not np.issubdtype(value.dtype, np.floating):
                shrunk[key] = value
            elif ref is None:
                shrunk[key] = (value * scale).astype(value.dtype, copy=False)
            else:
                base = np.asarray(ref[key])
                shrunk[key] = (base + scale * (value - base)).astype(
                    value.dtype, copy=False
                )
        return shrunk, True

    def begin_stream(self, ref: StateDict | None = None) -> AggregationStream:
        if not self.streaming:
            return super().begin_stream(ref)
        return _ClipStream(self, ref)

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        ref: StateDict | None = None,
    ) -> StateDict:
        clipped_states: list[StateDict] = []
        clipped = 0
        for state in states:
            shrunk, was_clipped = self.clip_one(state, ref)
            clipped += was_clipped
            clipped_states.append(shrunk)
        result = self.inner.aggregate(clipped_states, weights, ref)
        self.last_clipped = clipped
        self.last_rejected = self.inner.last_rejected
        return result


class EdgeAggregator(Aggregator):
    """Two-tier hierarchical topology (``edge(G)+<rule>``,
    ``--topology edge:G``).

    ``G`` edge aggregators each reduce their group of uploads (group =
    sampling position mod ``G``) with the wrapped rule's streaming form;
    the root composes the groups' partial (compensated sum, weight)
    pairs and divides once.  Weighted means compose exactly across
    tiers, so the result is bit-identical to the flat rule — trace
    tests pin this across engines and transports.  The wrapped rule
    must be streaming-capable; order statistics have no exact
    hierarchical decomposition and are rejected at construction.
    """

    def __init__(self, groups: int, inner: Aggregator) -> None:
        super().__init__()
        if groups < 1:
            raise ValueError(f"edge group count must be >= 1, got {groups}")
        if not inner.streaming:
            raise ValueError(
                f"edge topology requires a streaming-capable rule; "
                f"{inner.spec!r} is an order statistic and cannot be "
                f"reduced hierarchically without changing its result"
            )
        self.groups = int(groups)
        self.inner = inner
        self.robust = inner.robust

    name = "edge"
    streaming = True

    @property
    def spec(self) -> str:
        return f"edge({self.groups})+{self.inner.spec}"

    def reduce_vectors(self, matrix: np.ndarray) -> np.ndarray:
        return self.inner.reduce_vectors(matrix)

    def begin_stream(self, ref: StateDict | None = None) -> AggregationStream:
        return _EdgeStream(self, ref)

    def aggregate(
        self,
        states: Sequence[StateDict],
        weights: Sequence[float],
        ref: StateDict | None = None,
    ) -> StateDict:
        if not states:
            raise ValueError("need at least one state to aggregate")
        stream = self.begin_stream(ref)
        for position, (state, weight) in enumerate(zip(states, weights)):
            stream.fold(state, weight, position)
        return stream.finalize()


# -- registry -----------------------------------------------------------------

_AggregatorFactory = Callable[..., Aggregator]
_AGGREGATORS: dict[str, _AggregatorFactory] = {}

_SPEC_ITEM = re.compile(r"^\s*([a-z_\-]+)\s*(?:\(\s*([^()]*?)\s*\))?\s*$")


def register_aggregator(name: str, factory: _AggregatorFactory) -> None:
    """Register a rule factory under ``name``; the factory receives the
    spec's parenthesized arguments as positional strings (``krum(2)`` calls
    ``factory("2")``)."""
    _AGGREGATORS[name] = factory


def aggregator_specs() -> tuple[str, ...]:
    """Registered base-rule names, sorted (mirrors codec_specs etc.)."""
    return tuple(sorted(_AGGREGATORS))


def _build_one(item: str, spec: str) -> tuple[str, tuple[str, ...]]:
    match = _SPEC_ITEM.match(item)
    if match is None:
        raise ValueError(
            f"bad aggregator spec item {item!r} in {spec!r}; expected "
            f"name or name(args)"
        )
    name, args = match.group(1), match.group(2)
    arg_tuple = tuple(
        part.strip() for part in args.split(",") if part.strip()
    ) if args else ()
    return name, arg_tuple


def make_aggregator(spec: "str | Aggregator | None") -> Aggregator:
    """Build an aggregation rule from a spec string.

    ``None`` means the default (``mean``); already-built aggregators pass
    through unchanged — the same convention as
    :func:`repro.fl.codec.make_codec`.  Specs compose with ``+`` where the
    left side is a ``clip(tau)`` or ``edge(G)`` prefix:
    ``clip(2.5)+median``, ``edge(4)+mean``, ``edge(4)+clip(2.5)+mean``.
    """
    if spec is None:
        return MeanAggregator()
    if isinstance(spec, Aggregator):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise TypeError(f"aggregator spec must be a non-empty string, got {spec!r}")
    parts = [part for part in spec.split("+")]
    name, args = _build_one(parts[-1], spec)
    factory = _AGGREGATORS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown aggregator {name!r} in {spec!r}; expected one of "
            f"{', '.join(aggregator_specs())} (optionally prefixed "
            f"'clip(tau)+')"
        )
    try:
        aggregator = factory(*args)
    except TypeError as exc:
        raise ValueError(
            f"bad arguments for aggregator {name!r} in {spec!r}: {exc}"
        ) from exc
    for part in reversed(parts[:-1]):
        prefix, prefix_args = _build_one(part, spec)
        if prefix == "clip":
            if len(prefix_args) != 1:
                raise ValueError(
                    f"clip takes exactly one argument (tau), got {part!r} in "
                    f"{spec!r}"
                )
            try:
                tau = float(prefix_args[0])
            except ValueError as exc:
                raise ValueError(
                    f"bad clip tau {prefix_args[0]!r} in {spec!r}"
                ) from exc
            aggregator = ClipAggregator(tau, aggregator)
        elif prefix == "edge":
            if len(prefix_args) != 1:
                raise ValueError(
                    f"edge takes exactly one argument (the group count), "
                    f"got {part!r} in {spec!r}"
                )
            try:
                groups = int(prefix_args[0])
            except ValueError as exc:
                raise ValueError(
                    f"bad edge group count {prefix_args[0]!r} in {spec!r}"
                ) from exc
            aggregator = EdgeAggregator(groups, aggregator)
        else:
            raise ValueError(
                f"only 'clip(tau)' or 'edge(G)' may prefix an aggregator, "
                f"got {part!r} in {spec!r}"
            )
    return aggregator


def _int_arg(name: str, value: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise ValueError(f"bad {name} argument {value!r}") from exc


register_aggregator("mean", lambda: MeanAggregator())
register_aggregator("median", lambda: MedianAggregator())
register_aggregator(
    "trimmed_mean",
    lambda k="1": TrimmedMeanAggregator(k=_int_arg("trimmed_mean", k)),
)
register_aggregator(
    "krum",
    lambda f=None: KrumAggregator(
        m=1, f=None if f is None else _int_arg("krum", f)
    ),
)
register_aggregator(
    "multi-krum",
    lambda m="2", f=None: KrumAggregator(
        m=_int_arg("multi-krum", m),
        f=None if f is None else _int_arg("multi-krum", f),
    ),
)
