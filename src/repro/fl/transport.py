"""Pluggable wire transports: *how* encoded blobs cross the process boundary.

The codec stack (:mod:`repro.fl.codec`) decides *what* bytes represent a
state; this module decides how those bytes travel between the server and
its worker processes.  The split matters for the server→client hop: PARDON
ships **one** global model to every participant each round, so the
broadcast is a fan-out of identical bytes — exactly the pattern where a
single shared-memory copy beats N pickled pipe copies.

Two transports ship by default, selectable by spec string (``--transport``
on the CLI, ``transport=`` on :class:`repro.fl.server.FederatedConfig`,
:class:`repro.eval.protocols.ExperimentSetting`, and
:class:`repro.fl.executor.ParallelExecutor`):

``pipe``
    The historical path: the encoded broadcast blob is pickled into each
    participating worker's task pipe — one full copy per worker.
``shm``
    Single-copy broadcast via :mod:`multiprocessing.shared_memory`: the
    server writes the post-codec blob **once** into a named segment and
    ships workers only a tiny :class:`ShmHandle`.  Workers map the segment
    and feed a *read-only, zero-copy* view straight into the serializer's
    protocol-5 out-of-band decode — no per-worker copy ever exists.

``tcp``
    Socket broadcast (:mod:`repro.fl.net.transport`): the server publishes
    the post-codec blob once to an in-process asyncio blob server and
    workers pull it over a loopback (or real) TCP connection — the
    single-host on-ramp to cross-machine federation.  Accepts an optional
    bind address: ``tcp`` (loopback, ephemeral port) or ``tcp:host:port``.

``auto`` (the default everywhere) resolves to ``shm`` when the platform
supports POSIX shared memory and degrades to ``pipe`` — with a logged
reason — otherwise.  All transports move byte-identical blobs, so run
traces are transport-invariant by construction — the engines' regression
tests assert it.

Segment lifecycle (shm)
-----------------------
The server owns every segment: one per distinct encoded broadcast blob per
round, unlinked as soon as the round's uploads are all in
(:meth:`Transport.end_round`), and unconditionally on
:meth:`Transport.close` — which pool rebuilds and
:meth:`repro.fl.executor.Executor.close` both call.  A
``weakref.finalize`` guard (which doubles as an atexit hook) unlinks
whatever is still live if the transport is dropped without a clean close,
so aborted runs cannot strand segments in ``/dev/shm``.  Workers only
*attach*; they retain the two most recent attachments (the current round's
segment plus the previous one, whose decoded views a stateful codec may
still reference) and mappings die with the worker process, so worker
crashes cannot leak either.

Upload channel
--------------
Uploads are per-client payloads with no fan-out redundancy, so both stock
transports pass them straight through the pool's result pipe
(:meth:`Transport.send_upload` / :meth:`Transport.recv_upload` are
identity hooks a future transport can override).
"""

from __future__ import annotations

import os
import secrets
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.utils.logging import get_logger

__all__ = [
    "Transport",
    "PipeTransport",
    "ShmTransport",
    "ShmHandle",
    "make_transport",
    "register_transport",
    "resolve_transport",
    "transport_specs",
    "transport_usage",
    "shm_supported",
    "TRANSPORT_KINDS",
    "SHM_SEGMENT_PREFIX",
]

_log = get_logger("fl.transport")

#: Spec strings accepted wherever a transport is configured (parameterized
#: transports additionally accept a ``name:params`` suffix, e.g.
#: ``tcp:host:port``).
TRANSPORT_KINDS = ("auto", "pipe", "shm", "tcp")

#: Every shm segment this library creates carries this name prefix, so leak
#: checks (and humans inspecting ``/dev/shm``) can tell ours apart.  Kept
#: short: POSIX shm names are capped near 30 chars on macOS.
SHM_SEGMENT_PREFIX = "repro-wire"

#: How many attachments a worker-side shm transport keeps open: the current
#: round's segment plus the previous one — zero-copy decoded views (e.g. the
#: identity codec's state, or a stateful codec's broadcast reference) may
#: still point into the previous round's mapping.
_WORKER_ATTACH_RETENTION = 2


@dataclass(frozen=True)
class ShmHandle:
    """What actually crosses the pipe under the shm transport: the segment
    name and the blob length (segments round up to page size, so the length
    cannot be recovered from the mapping)."""

    segment: str
    length: int


class Transport:
    """Downlink fan-out + upload channel for one executor's wire.

    One instance lives on the server (``publish`` / ``handle_wire_bytes`` /
    ``end_round`` / ``close`` / ``recv_upload``) and one per worker process
    (``fetch`` / ``send_upload``), negotiated by spec at pool build exactly
    like the codec — both endpoints are built from the same name before any
    blob crosses.

    The contract: ``fetch(publish(blob))`` yields the same bytes in every
    worker, and a handle must stay fetchable until :meth:`end_round` is
    called for the round that published it.
    """

    #: Spec string this transport answers to in the registry.
    name = "transport"

    @property
    def spec(self) -> str:
        """The full spec string that rebuilds an equivalent endpoint in a
        worker process (``name`` plus any instance parameters).  Shipped in
        pool initargs so both sides negotiate from the same string."""
        return self.name

    # -- server role ---------------------------------------------------------

    def publish(self, blob: bytes) -> object:
        """Make one encoded broadcast blob available to workers; returns the
        (small, picklable) handle to ship in their broadcast message."""
        raise NotImplementedError

    def publish_wire_bytes(self, blob: bytes) -> int:
        """Bytes the publish itself moved (0 when the blob only travels
        per-worker, i.e. inside the handles)."""
        return 0

    def handle_wire_bytes(self, handle: object) -> int:
        """Per-worker cost of shipping ``handle`` in a broadcast message."""
        raise NotImplementedError

    def end_round(self) -> None:
        """All of the round's uploads are in: release round-scoped
        resources (shm unlinks its published segments)."""

    def close(self) -> None:
        """Release everything.  Idempotent; called on executor close and on
        every pool rebuild."""

    # -- worker role ---------------------------------------------------------

    def fetch(self, handle: object) -> "bytes | memoryview":
        """The published blob for ``handle``, as a bytes-like the serializer
        can decode from directly (shm returns a read-only zero-copy view)."""
        raise NotImplementedError

    # -- upload channel ------------------------------------------------------

    def send_upload(self, blob: bytes) -> bytes:
        """Worker-side upload hook; stock transports pass through the pool's
        result pipe (per-client payloads have no fan-out redundancy)."""
        return blob

    def recv_upload(self, wire: bytes) -> bytes:
        """Server-side inverse of :meth:`send_upload`."""
        return wire

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class PipeTransport(Transport):
    """The historical wire: the blob *is* the handle, so the pool pickles
    one full copy into every participating worker's pipe."""

    name = "pipe"

    def publish(self, blob: bytes) -> bytes:
        return blob

    def handle_wire_bytes(self, handle: object) -> int:
        return len(handle)  # the whole blob rides in each broadcast message

    def fetch(self, handle: object) -> bytes:
        return handle


def _unlink_segments(segments: list) -> None:
    """Best-effort close + unlink of server-owned segments; shared by the
    normal paths and the finalize/atexit guard."""
    for segment in segments:
        try:
            segment.close()
        except (BufferError, ValueError, OSError):  # pragma: no cover
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    segments.clear()


class ShmTransport(Transport):
    """Single-copy broadcast through named shared-memory segments.

    The server writes each distinct encoded blob once
    (:meth:`publish`), workers map it zero-copy (:meth:`fetch`).  See the
    module docstring for the full lifecycle story; the short version is
    that the server owns and unlinks every segment (per round, on close,
    and via a ``weakref.finalize`` guard on abnormal teardown), while
    workers only attach and retain the last
    :data:`_WORKER_ATTACH_RETENTION` mappings.
    """

    name = "shm"

    def __init__(self) -> None:
        # Server role: segments published since the last end_round().  The
        # list object is shared with the finalizer so cleanup always sees
        # the current contents.
        self._published: list = []
        self._finalizer = weakref.finalize(self, _unlink_segments, self._published)
        # Worker role: attach cache, insertion-ordered for LRU eviction.
        self._attached: "OrderedDict[str, object]" = OrderedDict()
        # Attachments whose buffers were still exported (numpy views alive)
        # when eviction tried to close them; retried on later evictions and
        # released with the process either way.
        self._zombies: list = []

    # -- server role ---------------------------------------------------------

    @staticmethod
    def _new_segment(size: int):
        from multiprocessing import shared_memory

        while True:
            name = f"{SHM_SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(3)}"
            try:
                return shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - 24-bit token clash
                continue

    def publish(self, blob: bytes) -> ShmHandle:
        segment = self._new_segment(max(1, len(blob)))
        segment.buf[: len(blob)] = blob
        self._published.append(segment)
        return ShmHandle(segment=segment.name, length=len(blob))

    def publish_wire_bytes(self, blob: bytes) -> int:
        return len(blob)  # the single copy into the segment

    def handle_wire_bytes(self, handle: object) -> int:
        import pickle

        return len(pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL))

    def end_round(self) -> None:
        _unlink_segments(self._published)

    def close(self) -> None:
        _unlink_segments(self._published)
        for name in list(self._attached):
            self._release_attachment(name)
        self._zombies = [z for z in self._zombies if not _try_close(z)]

    # -- worker role ---------------------------------------------------------

    @staticmethod
    def _attach(name: str):
        """Attach to a server-owned segment without adopting ownership.

        Python's resource tracker assumes whoever opens a segment must
        clean it up and would unlink (and warn about) the server's segments
        when the worker exits; 3.13 grew ``track=False`` for exactly this.
        Older versions share one tracker process across the whole fork
        tree, keyed by name alone — so an attach must not *register* in the
        first place (unregistering afterwards would knock out the server's
        own registration and make its later unlink a tracker error).
        """
        from multiprocessing import shared_memory

        try:
            return shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: suppress registration instead
            from multiprocessing import resource_tracker

            original = resource_tracker.register

            def register(rname: str, rtype: str) -> None:
                if rtype != "shared_memory":  # pragma: no cover
                    original(rname, rtype)

            resource_tracker.register = register
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original

    def _release_attachment(self, name: str) -> None:
        segment = self._attached.pop(name)
        try:
            segment.close()
        except BufferError:  # views still exported; retry on a later evict
            self._zombies.append(segment)
        self._zombies = [z for z in self._zombies if not _try_close(z)]

    def fetch(self, handle: object) -> memoryview:
        if not isinstance(handle, ShmHandle):
            raise TypeError(
                f"shm transport received a {type(handle).__name__} handle; "
                f"the endpoints negotiated different transports"
            )
        segment = self._attached.get(handle.segment)
        if segment is None:
            segment = self._attach(handle.segment)
            self._attached[handle.segment] = segment
            while len(self._attached) > _WORKER_ATTACH_RETENTION:
                self._release_attachment(next(iter(self._attached)))
        else:
            self._attached.move_to_end(handle.segment)
        return segment.buf.toreadonly()[: handle.length]


def _try_close(segment: object) -> bool:
    try:
        segment.close()
        return True
    except BufferError:
        return False


# -- registry -----------------------------------------------------------------

#: name -> (factory, parameterized).  A parameterized factory takes the
#: params string that followed ``name:`` in the spec (or ``None``); plain
#: factories take no arguments and their specs reject a params suffix.
_TRANSPORTS: "dict[str, tuple[Callable[..., Transport], bool]]" = {}


def register_transport(
    name: str, factory: Callable[..., Transport], *, parameterized: bool = False
) -> None:
    """Register a transport under a spec name (mirrors the codec registry).

    ``parameterized=True`` makes the spec accept a ``name:params`` suffix
    (e.g. ``tcp:host:port``) which is handed to ``factory(params)``.
    """
    _TRANSPORTS[name] = (factory, parameterized)


def _tcp_factory(params: "str | None" = None) -> Transport:
    from repro.fl.net.transport import TcpTransport

    return TcpTransport(params)


register_transport("pipe", PipeTransport)
register_transport("shm", ShmTransport)
register_transport("tcp", _tcp_factory, parameterized=True)


def transport_specs() -> tuple[str, ...]:
    """The registered transport names (``"auto"`` resolves to one of them)."""
    return tuple(sorted(_TRANSPORTS))


def transport_usage() -> tuple[str, ...]:
    """Human-oriented spec forms for error messages and ``--help``: every
    registered name, with ``[:params]`` marking the parameterized ones."""
    forms = ["auto"]
    for name in sorted(_TRANSPORTS):
        _, parameterized = _TRANSPORTS[name]
        forms.append(f"{name}[:host:port]" if parameterized else name)
    return tuple(forms)


def _split_spec(spec: str) -> "tuple[str, str | None]":
    """``"tcp:host:port"`` -> ``("tcp", "host:port")``; bare names get
    ``None`` params."""
    base, sep, params = spec.partition(":")
    return base, (params if sep else None)


_SHM_SUPPORTED: bool | None = None
_SHM_UNSUPPORTED_REASON: str = ""
_DEGRADE_LOGGED = False


def shm_supported() -> bool:
    """Whether this platform can create + attach POSIX shared memory.

    Probed once per process with a real (tiny) segment: import failures,
    missing ``/dev/shm``-style backing, and sandbox denials all land here
    as an honest ``False`` rather than a mid-run crash.
    """
    global _SHM_SUPPORTED, _SHM_UNSUPPORTED_REASON
    if _SHM_SUPPORTED is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _SHM_SUPPORTED = True
        except Exception as exc:
            _SHM_SUPPORTED = False
            _SHM_UNSUPPORTED_REASON = f"{type(exc).__name__}: {exc}"
    return _SHM_SUPPORTED


def _log_degrade(reason: str) -> None:
    """Log the shm -> pipe degradation once per process (the resolve runs
    at config validation, pool build, and every worker init)."""
    global _DEGRADE_LOGGED
    if not _DEGRADE_LOGGED:
        _DEGRADE_LOGGED = True
        _log.warning(
            "transport 'auto': shared memory unavailable (%s); degrading shm -> pipe",
            reason or "probe failed",
        )


def resolve_transport(spec: str, supported: bool | None = None) -> str:
    """Resolve ``"auto"`` to a concrete transport name and validate the rest.

    ``auto`` prefers the single-copy ``shm`` broadcast whenever the
    platform supports it (``supported`` overrides the probe, for tests) and
    degrades to ``pipe`` — logging the probe's failure reason once —
    otherwise.  Concrete specs pass through (with any ``name:params``
    suffix intact), unknown names and stray params fail loudly with the
    full registered-spec list.
    """
    if spec == "auto":
        if supported is None:
            supported = shm_supported()
        if supported:
            return "shm"
        _log_degrade(_SHM_UNSUPPORTED_REASON if supported is False else "")
        return "pipe"
    base, params = _split_spec(spec)
    if base not in _TRANSPORTS:
        raise ValueError(
            f"unknown transport {spec!r}; expected one of {transport_usage()}"
        )
    _, parameterized = _TRANSPORTS[base]
    if params is not None and not parameterized:
        raise ValueError(
            f"transport {base!r} takes no parameters (got {spec!r}); "
            f"expected one of {transport_usage()}"
        )
    return spec


def make_transport(spec: "str | Transport") -> Transport:
    """Build a transport from its spec string (``auto`` resolves first).

    Accepts an already-built :class:`Transport` unchanged, so every API
    taking a transport accepts either form — same convention as
    :func:`repro.fl.codec.make_codec`.
    """
    if isinstance(spec, Transport):
        return spec
    if not isinstance(spec, str) or not spec:
        raise TypeError(f"transport spec must be a non-empty string, got {spec!r}")
    base, params = _split_spec(resolve_transport(spec))
    factory, parameterized = _TRANSPORTS[base]
    return factory(params) if parameterized else factory()
