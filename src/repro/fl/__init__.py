"""``repro.fl`` — the federated-learning simulation substrate.

Method-agnostic round loop (client sampling, broadcast, local update,
aggregation, evaluation) with per-phase wall-clock instrumentation.  FedDG
methods plug in through :class:`repro.fl.Strategy`.
"""

from repro.fl.aggregate import (
    AggregationStream,
    Aggregator,
    EdgeAggregator,
    KrumAggregator,
    MeanAggregator,
    MedianAggregator,
    TrimmedMeanAggregator,
    aggregator_specs,
    make_aggregator,
    register_aggregator,
)
from repro.fl.client import Client, ScratchDelta, ScratchSpace
from repro.fl.codec import Codec, Payload, codec_specs, make_codec
from repro.fl.compute import (
    ComputeBackend,
    EnsembleBackend,
    LoopBackend,
    compute_specs,
    make_compute,
    register_compute,
    resolve_compute,
)
from repro.fl.communication import (
    CommunicationModel,
    MeasuredCommunication,
    method_communication,
)
from repro.fl.evaluation import evaluate_accuracy, evaluate_loss
from repro.fl.executor import (
    ClientUpdate,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WireStats,
    make_executor,
    resolve_executor,
)
from repro.fl.faults import (
    AdaptiveDeadline,
    FaultEvent,
    FaultPlan,
    FixedDeadline,
    RoundFaultReport,
    RoundTimeoutError,
    make_deadline_policy,
    make_fault_plan,
)
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.population import (
    ClientFactory,
    ClientPopulation,
    LazyPopulation,
    ListPopulation,
    as_population,
)
from repro.fl.sampling import UniformClientSampler
from repro.fl.secure import SecureAggregator, masked_upload
from repro.fl.server import (
    FederatedConfig,
    FederatedResult,
    FederatedServer,
    parse_topology,
)
from repro.fl.strategy import LocalTrainingConfig, Strategy, run_ce_epochs
from repro.fl.timing import PhaseTimer, TimingReport
from repro.fl.transport import (
    PipeTransport,
    ShmTransport,
    Transport,
    make_transport,
    resolve_transport,
    shm_supported,
    transport_specs,
)

__all__ = [
    "AggregationStream",
    "Aggregator",
    "EdgeAggregator",
    "KrumAggregator",
    "MeanAggregator",
    "MedianAggregator",
    "TrimmedMeanAggregator",
    "aggregator_specs",
    "make_aggregator",
    "register_aggregator",
    "Client",
    "ClientUpdate",
    "Codec",
    "CommunicationModel",
    "MeasuredCommunication",
    "Payload",
    "ScratchDelta",
    "ScratchSpace",
    "WireStats",
    "codec_specs",
    "make_codec",
    "ComputeBackend",
    "EnsembleBackend",
    "LoopBackend",
    "compute_specs",
    "make_compute",
    "register_compute",
    "resolve_compute",
    "method_communication",
    "evaluate_accuracy",
    "evaluate_loss",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "resolve_executor",
    "AdaptiveDeadline",
    "FaultEvent",
    "FaultPlan",
    "FixedDeadline",
    "RoundFaultReport",
    "RoundTimeoutError",
    "make_deadline_policy",
    "make_fault_plan",
    "RoundRecord",
    "RunHistory",
    "ClientFactory",
    "ClientPopulation",
    "LazyPopulation",
    "ListPopulation",
    "as_population",
    "UniformClientSampler",
    "SecureAggregator",
    "masked_upload",
    "FederatedConfig",
    "FederatedResult",
    "FederatedServer",
    "parse_topology",
    "LocalTrainingConfig",
    "Strategy",
    "run_ce_epochs",
    "PhaseTimer",
    "TimingReport",
    "Transport",
    "PipeTransport",
    "ShmTransport",
    "make_transport",
    "resolve_transport",
    "shm_supported",
    "transport_specs",
]
