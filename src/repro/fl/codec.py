"""Layered codec stack for the federated wire.

Everything that crosses a process (or, eventually, network) boundary in this
repository is a :class:`repro.nn.serialize.StateDict`.  A :class:`Codec`
turns one into a :class:`Payload` — the unit the transport serializes — and
back, optionally against a *reference state* both endpoints already hold.
The execution engines (:mod:`repro.fl.executor`) maintain those references:
workers cache the previous broadcast, the server keeps every client's last
acknowledged upload, so a stateful codec can ship only what changed.

Four codecs ship by default, selectable by spec string (``--codec`` on the
CLI, ``codec=`` on :class:`repro.fl.server.FederatedConfig` and
:class:`repro.eval.protocols.ExperimentSetting`):

``identity``
    Raw state dicts — the historical wire format and the default.
``delta``
    Lossless: the bitwise XOR against the reference state, byte-transposed
    and DEFLATE-compressed.  Decoding is bit-exact, so run traces stay
    identical to ``identity`` on every engine.  *How much* it saves is
    entropy-bound: an SGD step randomizes the low mantissa bits, so only
    the sign/exponent/high-mantissa bytes (which agree between state and
    reference) compress away.  Dense float64 training at bench learning
    rates yields ~1.3x; the win grows with temporal redundancy and reaches
    well past 2x in fine-tuning / near-convergence regimes where updates
    are small relative to the weights — exactly the production-FL setting
    (continual fine-tuning) delta encoding exists for.
``fp16``
    Lossy: float tensors travel as IEEE half precision (4x smaller than
    this library's float64), everything else unchanged.
``qint8``
    Lossy: float tensors travel as uint8 with a per-tensor affine
    (scale, offset) — 8x smaller, max error half a quantization step.

Codecs compose into a pipeline with ``+``: ``"fp16+deflate"`` quantizes and
then byte-transposes + DEFLATEs the wire tensors.  ``delta`` already
includes its DEFLATE stage (an uncompressed XOR delta is the same size as
the state).  Register new stages with :func:`register_codec` /
:func:`register_filter`.

Contract
--------
* ``decode(encode(state, ref), ref) == state`` bit-exactly when
  ``lossless`` is true, and within the codec's stated tolerance otherwise.
* ``stateful`` codecs require lossless round-trips: both endpoints advance
  their reference from the decoded state, and any loss would compound as
  reference drift.  Lossy codecs must ignore ``ref`` (they are applied
  afresh to every payload), which is also what keeps serial and parallel
  traces identical under them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.nn.serialize import StateDict

__all__ = [
    "Codec",
    "Payload",
    "IdentityCodec",
    "DeltaCodec",
    "Fp16Codec",
    "Qint8Codec",
    "DeflateCodec",
    "make_codec",
    "register_codec",
    "register_filter",
    "codec_specs",
    "analytic_scalar_bytes",
]

_DEFLATE_LEVEL = 6


@dataclass(frozen=True)
class Payload:
    """One codec-encoded state, ready for the transport.

    ``tensors`` carries array-valued wire content and rides the
    serializer's out-of-band fast path (see
    :func:`repro.nn.serialize.encode_payload`); ``blob`` carries
    byte-filtered (compressed) content; ``meta`` is small per-tensor
    metadata (dtypes, quantization parameters, packing specs).  ``codec``
    records the producing pipeline spec so a decode with the wrong codec
    fails loudly instead of corrupting states.
    """

    __wire_oob__ = True

    codec: str
    kind: str
    tensors: StateDict = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    blob: bytes | None = None


class Codec:
    """State <-> payload transform; subclasses implement one wire format."""

    #: Spec string this codec answers to in the registry.
    name = "codec"
    #: True when decode(encode(s, ref), ref) is bit-exact.
    lossless = True
    #: True when the codec consumes/advances endpoint reference states.
    stateful = False

    @property
    def spec(self) -> str:
        """The pipeline spec string that rebuilds this codec."""
        return self.name

    def encode(self, state: StateDict, ref: StateDict | None = None) -> Payload:
        raise NotImplementedError

    def decode(self, payload: Payload, ref: StateDict | None = None) -> StateDict:
        raise NotImplementedError

    def roundtrip(self, state: StateDict) -> StateDict:
        """What the far endpoint would see — used by in-process engines to
        reproduce a lossy wire without one (lossless codecs: the state)."""
        if self.lossless:
            return state
        return self.decode(self.encode(state))

    def analytic_scalar_bytes(self, dense_bytes: float = 8.0) -> float:
        """Wire bytes per state scalar for the analytic communication model
        (an upper bound: byte-filter compression is data-dependent and not
        modeled — the measured columns are ground truth)."""
        return dense_bytes

    def _check(self, payload: Payload) -> None:
        if payload.codec != self.spec:
            raise ValueError(
                f"payload was encoded by codec {payload.codec!r}, "
                f"not {self.spec!r}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(spec={self.spec!r})"


# -- byte packing helpers -----------------------------------------------------
#
# The transpose ("shuffle") filter groups the i-th byte of every element
# together before DEFLATE, so low-entropy byte planes — exponents across a
# tensor, the zeroed high bytes of an XOR delta — compress as long runs
# instead of being interleaved with full-entropy mantissa bytes.


def _as_bytes_matrix(array: np.ndarray) -> np.ndarray:
    """A C-contiguous ``(size, itemsize)`` uint8 view of ``array``'s bytes."""
    contiguous = np.ascontiguousarray(array)
    return contiguous.view(np.uint8).reshape(contiguous.size, contiguous.itemsize)


def _shuffle(array: np.ndarray) -> bytes:
    if array.size == 0:
        return b""
    if array.itemsize == 1:
        return np.ascontiguousarray(array).tobytes()
    return _as_bytes_matrix(array).T.tobytes()


def _unshuffle(chunk: memoryview | bytes, dtype: np.dtype, shape: tuple) -> np.ndarray:
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if count == 0:
        return np.empty(shape, dtype=dtype)
    flat = np.frombuffer(chunk, dtype=np.uint8)
    if dtype.itemsize == 1:
        return flat.reshape(shape).astype(dtype, copy=True).reshape(shape)
    matrix = np.ascontiguousarray(flat.reshape(dtype.itemsize, count).T)
    return matrix.view(dtype).reshape(shape)


def _tensor_spec(tensors: StateDict) -> tuple:
    return tuple(
        (key, tensors[key].dtype.str, tuple(tensors[key].shape))
        for key in sorted(tensors)
    )


def _pack(tensors: StateDict) -> tuple[bytes, tuple]:
    """Shuffle + concatenate + DEFLATE a state dict; spec rebuilds it."""
    spec = _tensor_spec(tensors)
    body = b"".join(_shuffle(tensors[key]) for key, _, _ in spec)
    return zlib.compress(body, _DEFLATE_LEVEL), spec


def _unpack(blob: bytes, spec: tuple) -> StateDict:
    body = memoryview(zlib.decompress(blob))
    tensors: StateDict = {}
    offset = 0
    for key, dtype_str, shape in spec:
        dtype = np.dtype(dtype_str)
        nbytes = dtype.itemsize * (int(np.prod(shape, dtype=np.int64)) if shape else 1)
        tensors[key] = _unshuffle(body[offset : offset + nbytes], dtype, shape)
        offset += nbytes
    if offset != len(body):
        raise ValueError("packed payload length does not match its spec")
    return tensors


def _xor_bytes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise XOR of two same-structured arrays as a (size, itemsize)
    uint8 matrix — exact for every dtype, reversible by XORing again."""
    if a.shape != b.shape or a.dtype != b.dtype:
        raise ValueError("delta endpoints disagree on tensor structure")
    return _as_bytes_matrix(a) ^ _as_bytes_matrix(b)


# -- the four stock codecs ----------------------------------------------------


class IdentityCodec(Codec):
    """Today's wire format: the state dict itself (zero-copy both ways)."""

    name = "identity"

    def encode(self, state: StateDict, ref: StateDict | None = None) -> Payload:
        return Payload(codec=self.spec, kind="full", tensors=state)

    def decode(self, payload: Payload, ref: StateDict | None = None) -> StateDict:
        self._check(payload)
        return payload.tensors


class DeltaCodec(Codec):
    """Lossless bidirectional deltas: XOR vs. the reference, shuffled and
    DEFLATEd.  Without a reference (a client's or worker's first exchange)
    the full state travels, still shuffled + DEFLATEd.
    """

    name = "delta"
    stateful = True

    def encode(self, state: StateDict, ref: StateDict | None = None) -> Payload:
        if ref is not None and sorted(ref) != sorted(state):
            raise ValueError("delta endpoints disagree on state keys")
        if ref is None:
            blob, spec = _pack(state)
            return Payload(
                codec=self.spec, kind="full", meta={"spec": spec}, blob=blob
            )
        spec = _tensor_spec(state)
        body = b"".join(
            _xor_bytes(state[key], ref[key]).T.tobytes() for key, _, _ in spec
        )
        return Payload(
            codec=self.spec,
            kind="delta",
            blob=zlib.compress(body, _DEFLATE_LEVEL),
        )

    def decode(self, payload: Payload, ref: StateDict | None = None) -> StateDict:
        self._check(payload)
        if payload.kind == "full":
            return _unpack(payload.blob, payload.meta["spec"])
        if ref is None:
            raise ValueError(
                "delta frame arrived without a reference state; the "
                "endpoints' reference chains are out of sync"
            )
        deltas = _unpack(payload.blob, _tensor_spec(ref))
        state: StateDict = {}
        for key in deltas:
            matrix = _as_bytes_matrix(deltas[key]) ^ _as_bytes_matrix(ref[key])
            state[key] = (
                np.ascontiguousarray(matrix).view(ref[key].dtype).reshape(ref[key].shape)
            )
        return state


def _is_quantizable(value: np.ndarray) -> bool:
    return value.dtype.kind == "f" and value.size > 0


class Fp16Codec(Codec):
    """Lossy: float tensors cross the wire as IEEE half precision.

    4x smaller than this library's float64; relative error ~2^-11, with
    values beyond half-precision range saturating to inf (model weights in
    this repository live well inside it).  Non-float tensors pass through
    untouched.  Stateless: ``ref`` is ignored.
    """

    name = "fp16"
    lossless = False

    def analytic_scalar_bytes(self, dense_bytes: float = 8.0) -> float:
        return 2.0

    def encode(self, state: StateDict, ref: StateDict | None = None) -> Payload:
        tensors: StateDict = {}
        dtypes: dict[str, str] = {}
        for key, value in state.items():
            if _is_quantizable(value) and value.itemsize > 2:
                tensors[key] = value.astype(np.float16)
                dtypes[key] = value.dtype.str
            else:
                tensors[key] = value
        return Payload(
            codec=self.spec, kind="full", tensors=tensors, meta={"dtypes": dtypes}
        )

    def decode(self, payload: Payload, ref: StateDict | None = None) -> StateDict:
        self._check(payload)
        dtypes = payload.meta["dtypes"]
        return {
            key: value.astype(np.dtype(dtypes[key])) if key in dtypes else value
            for key, value in payload.tensors.items()
        }


class Qint8Codec(Codec):
    """Lossy: float tensors quantize to uint8 with a per-tensor affine map.

    ``q = round((x - offset) / scale)`` with ``scale = (max - min) / 255``;
    8x smaller than float64, max absolute error ``scale / 2`` per tensor.
    Constant tensors (``max == min``) ship as offset only.  Stateless.
    """

    name = "qint8"
    lossless = False

    def analytic_scalar_bytes(self, dense_bytes: float = 8.0) -> float:
        return 1.0

    def encode(self, state: StateDict, ref: StateDict | None = None) -> Payload:
        tensors: StateDict = {}
        affine: dict[str, tuple[float, float, str]] = {}
        for key, value in state.items():
            if not _is_quantizable(value):
                tensors[key] = value
                continue
            low = float(value.min())
            high = float(value.max())
            scale = (high - low) / 255.0
            if scale > 0.0:
                levels = np.clip(np.round((value - low) / scale), 0.0, 255.0)
            else:
                levels = np.zeros(value.shape)
            tensors[key] = levels.astype(np.uint8)
            affine[key] = (scale, low, value.dtype.str)
        return Payload(
            codec=self.spec, kind="full", tensors=tensors, meta={"affine": affine}
        )

    def decode(self, payload: Payload, ref: StateDict | None = None) -> StateDict:
        self._check(payload)
        affine = payload.meta["affine"]
        state: StateDict = {}
        for key, value in payload.tensors.items():
            if key in affine:
                scale, offset, dtype_str = affine[key]
                state[key] = (value.astype(np.dtype(dtype_str)) * scale) + offset
            else:
                state[key] = value
        return state


class DeflateCodec(Codec):
    """Byte-filter stage: shuffle + DEFLATE an inner codec's wire tensors.

    Composes via the ``+deflate`` spec suffix (e.g. ``"fp16+deflate"``).
    Pure transport compression: losslessness, statefulness, and tolerance
    are the inner codec's.
    """

    def __init__(self, inner: Codec) -> None:
        self.inner = inner
        self.lossless = inner.lossless
        self.stateful = inner.stateful

    @property
    def spec(self) -> str:
        return f"{self.inner.spec}+deflate"

    def analytic_scalar_bytes(self, dense_bytes: float = 8.0) -> float:
        return self.inner.analytic_scalar_bytes(dense_bytes)

    def encode(self, state: StateDict, ref: StateDict | None = None) -> Payload:
        payload = self.inner.encode(state, ref)
        if not payload.tensors:  # inner stage already byte-packed
            return Payload(
                codec=self.spec,
                kind=payload.kind,
                meta=payload.meta,
                blob=payload.blob,
            )
        blob, spec = _pack(payload.tensors)
        return Payload(
            codec=self.spec,
            kind=payload.kind,
            meta={**payload.meta, "packed": spec},
            blob=blob,
        )

    def decode(self, payload: Payload, ref: StateDict | None = None) -> StateDict:
        self._check(payload)
        meta = dict(payload.meta)
        spec = meta.pop("packed", None)
        tensors = _unpack(payload.blob, spec) if spec is not None else {}
        inner_payload = Payload(
            codec=self.inner.spec,
            kind=payload.kind,
            tensors=tensors,
            meta=meta,
            blob=None if spec is not None else payload.blob,
        )
        return self.inner.decode(inner_payload, ref)


# -- registry -----------------------------------------------------------------

_BASE_CODECS: dict[str, Callable[[], Codec]] = {}
_FILTERS: dict[str, Callable[[Codec], Codec]] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a base codec under a spec name."""
    _BASE_CODECS[name] = factory


def register_filter(name: str, factory: Callable[[Codec], Codec]) -> None:
    """Register a pipeline stage usable as a ``+name`` spec suffix."""
    _FILTERS[name] = factory


register_codec("identity", IdentityCodec)
register_codec("delta", DeltaCodec)
register_codec("fp16", Fp16Codec)
register_codec("qint8", Qint8Codec)
register_filter("deflate", DeflateCodec)


def codec_specs() -> tuple[str, ...]:
    """The registered base codec names (filters compose via ``+``)."""
    return tuple(sorted(_BASE_CODECS))


def make_codec(spec: "str | Codec") -> Codec:
    """Build a codec pipeline from its spec string (``"base[+filter...]"``).

    Accepts an already-built :class:`Codec` unchanged, so every API taking
    a codec accepts either form.
    """
    if isinstance(spec, Codec):
        return spec
    if not isinstance(spec, str) or not spec:
        raise TypeError(f"codec spec must be a non-empty string, got {spec!r}")
    base, *filters = spec.split("+")
    if base not in _BASE_CODECS:
        raise ValueError(
            f"unknown codec {base!r}; expected one of {codec_specs()}"
        )
    codec = _BASE_CODECS[base]()
    for stage in filters:
        if stage not in _FILTERS:
            raise ValueError(
                f"unknown codec filter {stage!r}; expected one of "
                f"{tuple(sorted(_FILTERS))}"
            )
        codec = _FILTERS[stage](codec)
    return codec


def analytic_scalar_bytes(spec: "str | Codec", dense_bytes: float = 8.0) -> float:
    """Wire bytes per state scalar for a codec spec (analytic upper bound)."""
    return make_codec(spec).analytic_scalar_bytes(dense_bytes)
