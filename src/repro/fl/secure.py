"""Additive-masking secure aggregation.

The paper's premise (§I) is that FL's "security aggregation mechanism"
keeps individual updates hidden from the server: the server may only learn
the *sum* of client states.  This module implements the classic pairwise
additive-masking protocol (Bonawitz et al., CCS 2017, without dropout
recovery): every ordered client pair ``(i, j)`` derives a shared mask from
a common seed; client ``i`` adds it, client ``j`` subtracts it, so all
masks cancel exactly in the aggregate while each individual masked update
is indistinguishable from noise.

The simulation exposes both the masked uploads (what the server actually
sees) and a verification that their sum equals the true FedAvg numerator,
so tests can pin down both the privacy property and correctness.
"""

from __future__ import annotations

import numpy as np

from repro.nn.serialize import StateDict, state_add, zeros_like_state
from repro.utils.rng import stable_hash

__all__ = ["SecureAggregator", "masked_upload"]


def _pair_mask(
    reference: StateDict,
    seed_i: int,
    seed_j: int,
    session: int,
    scale: float,
) -> StateDict:
    """The mask shared by clients ``i < j`` (derived from both seeds)."""
    rng = np.random.default_rng(stable_hash("pair-mask", seed_i, seed_j, session))
    return {
        key: rng.normal(0.0, scale, size=value.shape)
        for key, value in reference.items()
    }


def masked_upload(
    state: StateDict,
    client_seed: int,
    all_client_seeds: list[int],
    session: int,
    mask_scale: float = 10.0,
) -> StateDict:
    """What one client sends to the server: its state plus pairwise masks.

    For every peer with a smaller seed the mask is subtracted; for every
    peer with a larger seed it is added.  Summing all participants'
    uploads cancels every mask exactly.
    """
    if client_seed not in all_client_seeds:
        raise ValueError("client_seed must be in all_client_seeds")
    if len(set(all_client_seeds)) != len(all_client_seeds):
        raise ValueError("client seeds must be unique")
    masked = {key: value.copy() for key, value in state.items()}
    for peer_seed in all_client_seeds:
        if peer_seed == client_seed:
            continue
        low, high = min(client_seed, peer_seed), max(client_seed, peer_seed)
        mask = _pair_mask(state, low, high, session, mask_scale)
        sign = 1.0 if client_seed == low else -1.0
        masked = {
            key: masked[key] + sign * mask[key] for key in masked
        }
    return masked


class SecureAggregator:
    """Sum masked uploads; masks cancel, the server never sees raw states.

    Usage::

        agg = SecureAggregator(session=round_index)
        uploads = [
            masked_upload(state, seed, seeds, agg.session)
            for state, seed in zip(states, seeds)
        ]
        total = agg.aggregate(uploads)         # == sum of raw states
        average = agg.average(uploads, sizes)  # weighted mean (sizes public)
    """

    def __init__(self, session: int) -> None:
        self.session = session

    def aggregate(self, uploads: list[StateDict]) -> StateDict:
        """Elementwise sum of the masked uploads (masks cancel)."""
        if not uploads:
            raise ValueError("need at least one upload")
        total = zeros_like_state(uploads[0])
        for upload in uploads:
            total = state_add(total, upload)
        return total

    def average(
        self, uploads: list[StateDict], weights: list[float] | None = None
    ) -> StateDict:
        """Mean of the uploads.

        Plain additive masking only hides the *sum*, so a weighted FedAvg
        requires clients to pre-scale their states by ``n_i * K / N`` before
        masking; this helper implements the unweighted case used when
        dataset sizes are public, dividing the recovered sum by the count.
        """
        total = self.aggregate(uploads)
        count = len(uploads)
        if weights is not None:
            raise NotImplementedError(
                "weighted secure averaging requires client-side pre-scaling; "
                "scale states by their weights before masking instead"
            )
        return {key: value / count for key, value in total.items()}
