"""Model evaluation helpers used by the simulation core and strategies.

Lives inside ``repro.fl`` so the federated substrate has no dependency on
the higher-level ``repro.eval`` protocols (which depend on ``repro.fl``).
``repro.eval.metrics`` re-exports these for the public API.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import LabeledDataset
from repro.nn.functional import accuracy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import FeatureClassifierModel

__all__ = ["evaluate_accuracy", "evaluate_loss", "per_class_accuracy"]


def evaluate_accuracy(
    model: FeatureClassifierModel,
    dataset: LabeledDataset,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` in evaluation mode."""
    if len(dataset) == 0:
        return 0.0
    logits = model.predict_logits(dataset.images, batch_size=batch_size)
    return accuracy(logits, dataset.labels)


def evaluate_loss(
    model: FeatureClassifierModel,
    dataset: LabeledDataset,
    batch_size: int = 256,
) -> float:
    """Mean cross-entropy of ``model`` on ``dataset`` in evaluation mode."""
    if len(dataset) == 0:
        return 0.0
    logits = model.predict_logits(dataset.images, batch_size=batch_size)
    return CrossEntropyLoss().forward(logits, dataset.labels)


def per_class_accuracy(
    model: FeatureClassifierModel,
    dataset: LabeledDataset,
    num_classes: int,
    batch_size: int = 256,
) -> np.ndarray:
    """Accuracy per class; classes absent from ``dataset`` report NaN."""
    result = np.full(num_classes, np.nan)
    if len(dataset) == 0:
        return result
    logits = model.predict_logits(dataset.images, batch_size=batch_size)
    predictions = np.argmax(logits, axis=1)
    for class_id in range(num_classes):
        mask = dataset.labels == class_id
        if np.any(mask):
            result[class_id] = float(np.mean(predictions[mask] == class_id))
    return result
