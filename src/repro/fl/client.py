"""Client abstraction for the federated simulation.

Besides the :class:`Client` record itself, this module defines the
change-tracking half of the delta-based wire protocol:
:class:`ScratchSpace` is the per-client scratch dict that remembers which
keys were written or removed since the last synchronization point, and
:class:`ScratchDelta` is the portable record of those changes.  The
execution engines (:mod:`repro.fl.executor`) use the pair so a client's
scratch state — for PARDON, the style-transferred image cache — crosses the
process boundary once when it changes instead of in full every round.
"""

from __future__ import annotations

from collections.abc import Mapping, MutableMapping
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.data.synthetic import LabeledDataset

__all__ = ["Client", "ScratchDelta", "ScratchSpace"]


@dataclass(frozen=True)
class ScratchDelta:
    """The changes one sync interval made to a :class:`ScratchSpace`.

    ``updates`` maps written keys to their new values; ``removed`` lists
    deleted keys.  Applying a delta to any copy that was identical at the
    previous sync point reproduces the source exactly — additions,
    overwrites, and deletions all round-trip.
    """

    updates: dict[Any, Any] = field(default_factory=dict)
    removed: tuple[Any, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.updates or self.removed)


class ScratchSpace(MutableMapping):
    """A dict that remembers which keys changed since the last sync.

    Tracking is at key granularity: assigning or deleting a key marks it,
    while mutating a stored value in place (e.g. appending to a cached list)
    is invisible — strategies must re-assign the key to publish such a
    change.  Every strategy in this repository writes whole values, so the
    restriction is a documentation contract, not a migration.

    :meth:`collect_delta` snapshots the pending changes as a
    :class:`ScratchDelta` and marks the space clean; :meth:`apply_delta`
    replays a delta from elsewhere *without* re-marking the keys dirty (it
    is a sync, not a local edit), unless asked to ``record`` it.
    """

    __slots__ = ("_data", "_dirty", "_removed")

    def __init__(self, data: Mapping | None = None) -> None:
        self._data: dict[Any, Any] = dict(data) if data else {}
        # Insertion-ordered sets (dicts with None values) so delta contents
        # are deterministic across processes regardless of hash seeds.
        self._dirty: dict[Any, None] = dict.fromkeys(self._data)
        self._removed: dict[Any, None] = {}

    # -- mapping protocol ----------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._dirty[key] = None
        self._removed.pop(key, None)

    def __delitem__(self, key: Any) -> None:
        del self._data[key]
        self._dirty.pop(key, None)
        self._removed[key] = None

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"ScratchSpace({self._data!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ScratchSpace):
            return self._data == other._data
        if isinstance(other, dict):
            return self._data == other
        return NotImplemented

    # -- change tracking -----------------------------------------------------

    @property
    def dirty_keys(self) -> tuple[Any, ...]:
        """Keys written since the last sync point (insertion order)."""
        return tuple(self._dirty)

    @property
    def removed_keys(self) -> tuple[Any, ...]:
        """Keys deleted since the last sync point (insertion order)."""
        return tuple(self._removed)

    def mark_clean(self) -> None:
        """Declare the current contents synchronized (e.g. after shipping
        the whole space to a worker at registration)."""
        self._dirty.clear()
        self._removed.clear()

    def collect_delta(self) -> ScratchDelta:
        """Snapshot pending changes as a delta and mark the space clean.

        The returned delta holds references to (not copies of) the stored
        values; serialize or apply it before mutating them.
        """
        delta = ScratchDelta(
            updates={key: self._data[key] for key in self._dirty},
            removed=tuple(self._removed),
        )
        self.mark_clean()
        return delta

    def apply_delta(self, delta: ScratchDelta) -> None:
        """Replay a delta produced by another copy of this space.

        The changes are *not* marked dirty here — applying is a
        synchronization, not a local edit, and re-marking would bounce the
        same entries back on the next sync.
        """
        for key, value in delta.updates.items():
            self._data[key] = value
        for key in delta.removed:
            self._data.pop(key, None)

    # -- pickling (required because of __slots__) ----------------------------

    def __getstate__(self) -> tuple:
        return (self._data, tuple(self._dirty), tuple(self._removed))

    def __setstate__(self, state: tuple) -> None:
        data, dirty, removed = state
        self._data = data
        self._dirty = dict.fromkeys(dirty)
        self._removed = dict.fromkeys(removed)


@dataclass
class Client:
    """One federated participant: an id, a private dataset, and scratch state.

    ``scratch`` is a per-client :class:`ScratchSpace` strategies may use for
    method state that lives across rounds (e.g. PARDON's style-transfer
    cache).  The simulation core never reads it, which keeps the privacy
    boundary of each method explicit in the strategy code rather than hidden
    in the substrate; its change tracking is what lets the parallel engine
    sync only deltas across the process boundary.

    Co-resident clients (the same engine location in one round) may be
    handed to a compute backend (:mod:`repro.fl.compute`) as one *group*
    and trained as a fused parameter stack.  Backends sub-group by
    ``num_samples`` — stacking requires a shared batch geometry — and a
    client's scratch is only ever touched by its own slice, so grouping
    never couples clients' state.
    """

    client_id: int
    dataset: LabeledDataset
    scratch: ScratchSpace = field(default_factory=ScratchSpace)

    def __post_init__(self) -> None:
        if not isinstance(self.scratch, ScratchSpace):
            self.scratch = ScratchSpace(self.scratch)

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def nbytes(self) -> int:
        """Approximate resident bytes of this client's arrays (dataset
        tensors plus ndarray-valued scratch entries) — what one entry in
        the engine's bounded resident set costs the server."""
        total = 0
        for value in vars(self.dataset).values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
        for value in self.scratch.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total

    def domains_present(self) -> np.ndarray:
        """The distinct source-domain ids in this client's data."""
        return np.unique(self.dataset.domain_ids)
