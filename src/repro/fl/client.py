"""Client abstraction for the federated simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import LabeledDataset

__all__ = ["Client"]


@dataclass
class Client:
    """One federated participant: an id, a private dataset, and scratch state.

    ``scratch`` is a per-client dictionary strategies may use for method
    state that lives across rounds (e.g. FPL's last-known prototypes).  The
    simulation core never reads it, which keeps the privacy boundary of each
    method explicit in the strategy code rather than hidden in the substrate.
    """

    client_id: int
    dataset: LabeledDataset
    scratch: dict = field(default_factory=dict)

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def domains_present(self) -> np.ndarray:
        """The distinct source-domain ids in this client's data."""
        return np.unique(self.dataset.domain_ids)
