"""Strategy interface every FedDG method implements, plus shared training
helpers.

A strategy owns the three method-specific decision points of federated
learning:

* :meth:`Strategy.prepare` — one-time setup before round 1 (PARDON extracts
  the interpolation style here; CCST builds its cross-client style bank);
* :meth:`Strategy.local_update` — the client-side objective and loop;
* :meth:`Strategy.aggregate` — how the server merges client states
  (FedAvg by default; FedGMA masks by gradient sign agreement; FedDG-GA
  reweights by generalization gap).

The simulation core (:mod:`repro.fl.server`) is method-agnostic and only
calls these hooks, so adding a new FedDG method requires exactly one class.

Most FedDG methods don't need the loop-level hooks at all: the base
``local_update`` / ``ensemble_update`` run a declarative
:class:`repro.nn.objective.CompositeObjective` through the generic epoch
runners, and a method customizes the *ingredients* instead —

* :attr:`Strategy.objective` — the method's weighted term list (FedSR is
  ``ce + embed_l2 + class_align``; per-experiment reweighting comes in
  through :meth:`apply_objective_overrides` / ``--objective``);
* :meth:`Strategy.local_views` — an optional second index-aligned view of
  the client's images (PARDON's style transfer, FedCCRL's augmentation);
* :meth:`Strategy.objective_context` — per-client extras the terms read
  (FPL's global prototypes, FedAlign's fused alignment targets);
* :meth:`Strategy.payload_from_embeddings` — the method's upload side
  channel, distilled from a post-training embedding sweep;
* :meth:`Strategy.fuse_payloads` — the server-side merge of those
  payloads, run at the top of :meth:`aggregate` on both the batch and the
  streaming path.

Objective-driven strategies inherit the vectorized ``ensemble`` compute
backend automatically — the generic runners own both the scalar and the
``(K, ...)``-stacked loop.  Methods whose client step doesn't fit the
objective shape (CCST's style-bank resampling, MixStyle's feature-level
mixing) override :meth:`Strategy.train_client` instead, which sits *under*
the empty-client guard so every strategy handles zero-sample clients
uniformly.

Execution contract
------------------
``local_update`` may run inside a worker process (see
:mod:`repro.fl.executor`), so it must be *self-contained*: everything it
reads lives on the strategy or the client at dispatch time, and everything
it wants the server to see travels back inside the returned
:class:`repro.fl.executor.ClientUpdate` (state, loss, and method-specific
``payload`` entries).  Mutating strategy attributes from inside
``local_update`` is lost under parallel execution and is therefore
forbidden.  Server-only attributes that should not ship to workers (model
handles, client registries) are listed in ``_server_only_state`` and
stripped on pickling.

Per-client state that must persist across rounds belongs in
``client.scratch`` (a :class:`repro.fl.client.ScratchSpace`).  Change
tracking is key-granular: *assign or delete whole keys*; mutating a stored
value in place is invisible to the delta sync that carries scratch changes
back from worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import Batcher
from repro.data.synthetic import LabeledDataset
from repro.fl.aggregate import AggregationStream, Aggregator, make_aggregator
from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.nn import SGD, CrossEntropyLoss
from repro.nn.ensemble import ensemble_state_dicts
from repro.nn.models import FeatureClassifierModel
from repro.nn.module import Module
from repro.nn.objective import (
    CompositeObjective,
    dataset_embeddings,
    ensemble_dataset_embeddings,
    run_objective_ensemble,
    run_objective_epochs,
)
from repro.nn.serialize import StateDict

__all__ = ["LocalTrainingConfig", "Strategy", "run_ce_epochs"]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Hyperparameters of a client's local optimization.

    Shared across all strategies so overhead and accuracy comparisons are
    apples-to-apples, as in the paper's experimental setup (§IV-A: batch
    size 32, one local epoch, SGD).
    """

    batch_size: int = 32
    local_epochs: int = 1
    learning_rate: float = 0.02
    momentum: float = 0.9
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, got {self.local_epochs}")

    def make_optimizer(self, model: FeatureClassifierModel) -> SGD:
        return SGD(
            model.parameters(),
            lr=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )


def run_ce_epochs(
    model: FeatureClassifierModel,
    dataset: LabeledDataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
) -> float:
    """Plain cross-entropy local training; returns the mean batch loss.

    This is FedAvg's whole client step and the base loop several baselines
    extend.
    """
    model.train()
    optimizer = config.make_optimizer(model)
    criterion = CrossEntropyLoss()
    batcher = Batcher(dataset, config.batch_size, rng)
    losses: list[float] = []
    for _ in range(config.local_epochs):
        for images, labels in batcher.epoch():
            model.zero_grad()
            logits = model.forward(images)
            loss = criterion.forward(logits, labels)
            model.backward(grad_logits=criterion.backward())
            optimizer.step()
            losses.append(loss)
    return float(np.mean(losses)) if losses else 0.0


class Strategy:
    """Base class for federated strategies.  Subclasses override the hooks."""

    name = "strategy"

    #: Attribute names stripped when the strategy is shipped to a worker
    #: process — server-side handles that a local update must not depend on.
    _server_only_state: tuple[str, ...] = ()

    def __init__(
        self,
        local_config: LocalTrainingConfig | None = None,
        aggregator: "str | Aggregator | None" = None,
    ) -> None:
        self.local_config = local_config or LocalTrainingConfig()
        #: The server-side aggregation rule (:mod:`repro.fl.aggregate`).
        #: Defaults to the historical weighted mean; the server installs
        #: the config's rule onto a default-``mean`` strategy, so CLI
        #: strategies need no constructor plumbing.
        self.aggregator = make_aggregator(aggregator)
        #: The method's local training objective — plain cross-entropy
        #: (FedAvg) unless the subclass installs its own term list.
        self.objective = CompositeObjective([("ce", 1.0)])

    def apply_objective_overrides(self, overrides) -> None:
        """Reweight the objective's terms per experiment (``--objective``
        / :attr:`ExperimentSetting.objective`): a ``"term=weight,..."``
        spec or mapping.  Unknown term names raise — the override must
        target terms this strategy's objective actually has."""
        if not overrides:
            return
        self.objective = self.objective.with_overrides(overrides)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for attr in self._server_only_state:
            state.pop(attr, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        for attr in self._server_only_state:
            self.__dict__.setdefault(attr, None)

    def prepare(
        self,
        clients: list[Client],
        model: FeatureClassifierModel,
        rng: np.random.Generator,
    ) -> None:
        """One-time setup before the first round.  Default: nothing."""

    # -- objective-driven training hooks ----------------------------------

    def local_views(
        self, client: Client, rng: np.random.Generator
    ) -> np.ndarray | None:
        """An optional second view of the client's images, index-aligned
        with ``client.dataset`` (PARDON's style transfer, FedCCRL's
        augmentation).  Called once per update, *before* any batch
        permutation is drawn, so view randomness and shuffle randomness
        compose identically on the loop and ensemble paths."""
        return None

    def objective_context(self, client: Client) -> dict:
        """Per-client extras the objective's terms read (global
        prototypes, alignment targets).  Values must be picklable — they
        travel to worker processes on the strategy."""
        return {}

    def payload_from_embeddings(
        self, client: Client, embeddings: np.ndarray, labels: np.ndarray
    ) -> dict | None:
        """Distill the method's upload side channel from a post-training
        eval-mode embedding sweep of the client's dataset.  Returning a
        dict opts the strategy into the sweep; the base returns ``None``
        and no sweep runs."""
        return None

    def fuse_payloads(self, updates: list[ClientUpdate], round_index: int) -> None:
        """Server-side merge of the round's ``ClientUpdate.payload``
        entries into strategy state broadcast next round (FPL fuses
        prototypes, FedAlign fuses alignment targets).  Runs at the top of
        :meth:`aggregate` on both the batch and the streaming path —
        payloads survive streaming; only upload *states* are freed."""

    def _extracts_payload(self) -> bool:
        return (
            type(self).payload_from_embeddings
            is not Strategy.payload_from_embeddings
        )

    # -- client-side updates ----------------------------------------------

    def local_update(
        self,
        client: Client,
        model: FeatureClassifierModel,
        round_index: int,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        """Train ``model`` (already loaded with the global weights) on the
        client's data; return the client's upload.

        A zero-sample client contributes a zero-loss, unchanged-state
        update without consuming randomness — guarded here so every
        strategy inherits it; method-specific loops live in
        :meth:`train_client`.
        """
        if client.num_samples == 0:
            return ClientUpdate.from_client(client, model.state_dict(), 0.0)
        return self.train_client(client, model, round_index, rng)

    def train_client(
        self,
        client: Client,
        model: FeatureClassifierModel,
        round_index: int,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        """The method-specific client step (``client.num_samples > 0``
        guaranteed).  The base runs :attr:`objective` through the generic
        epoch runner — FedAvg's plain CE step bit-for-bit when the
        objective is the default — then distills the upload payload, if
        the strategy extracts one."""
        secondary = self.local_views(client, rng)
        loss = run_objective_epochs(
            model,
            client.dataset,
            self.objective,
            self.local_config,
            rng,
            extras=self.objective_context(client),
            secondary=secondary,
        )
        payload = None
        if self._extracts_payload():
            model.eval()
            embeddings = dataset_embeddings(
                model.forward_features, client.dataset.images
            )
            payload = self.payload_from_embeddings(
                client, embeddings, client.dataset.labels
            )
            model.train()
        return ClientUpdate.from_client(
            client, model.state_dict(), loss, payload=payload
        )

    def supports_ensemble(self) -> bool:
        """Whether the ``ensemble`` compute backend may batch this strategy.

        True when the subclass provides its own :meth:`ensemble_update` or
        :meth:`train_group`, or when it kept the base
        :meth:`local_update` *and* :meth:`train_client` (the generic
        ensemble runner is then its exact batched counterpart).  A
        subclass that overrides the scalar loop without a matching batched
        one silently runs on the loop backend — correct, just not fused.
        """
        if type(self).ensemble_update is not Strategy.ensemble_update:
            return True
        if type(self).train_group is not Strategy.train_group:
            return True
        return (
            type(self).local_update is Strategy.local_update
            and type(self).train_client is Strategy.train_client
        )

    def ensemble_update(
        self,
        clients: list[Client],
        emodel: Module,
        round_index: int,
        rngs: list[np.random.Generator],
    ) -> list[ClientUpdate] | None:
        """Train K same-sized clients as one ``(K, ...)`` parameter stack.

        ``emodel`` is the ensemble clone of the architecture
        (:func:`repro.nn.ensemble.ensemble_of`) with the broadcast weights
        already loaded into every slice; ``clients`` all hold datasets of
        equal length and ``rngs`` are the same per-client generators
        :meth:`local_update` would receive.  Implementations must draw
        from each ``rngs[k]`` in exactly the order the loop path does, so
        slice ``k`` reproduces client ``k``'s loop result bitwise.

        Returns the per-client updates in group order, or ``None`` to
        decline the group (the backend reruns it through the loop path).

        Mirrors :meth:`local_update`: the zero-sample guard lives here
        (the whole group is same-sized, so one empty client means all
        are), the batched method step in :meth:`train_group`.
        """
        if clients and clients[0].num_samples == 0:
            states = ensemble_state_dicts(emodel)
            return [
                ClientUpdate.from_client(client, state, 0.0)
                for client, state in zip(clients, states)
            ]
        return self.train_group(clients, emodel, round_index, rngs)

    def train_group(
        self,
        clients: list[Client],
        emodel: Module,
        round_index: int,
        rngs: list[np.random.Generator],
    ) -> list[ClientUpdate] | None:
        """The batched method step (every client non-empty).  The base is
        :meth:`train_client` vectorized: per-client views drawn first (one
        ``rngs[k]`` draw order per slice, exactly as the loop path), one
        stacked objective run, then the payload sweep."""
        views = [
            self.local_views(client, rng) for client, rng in zip(clients, rngs)
        ]
        secondary = np.stack(views) if views and views[0] is not None else None
        images = np.stack([client.dataset.images for client in clients])
        labels = np.stack([client.dataset.labels for client in clients])
        mean_losses = run_objective_ensemble(
            emodel,
            images,
            labels,
            self.objective,
            self.local_config,
            rngs,
            extras=[self.objective_context(client) for client in clients],
            secondary=secondary,
        )
        payloads: list[dict | None] = [None] * len(clients)
        if self._extracts_payload():
            emodel.eval()
            embeddings = ensemble_dataset_embeddings(
                emodel.forward_features, images
            )
            payloads = [
                self.payload_from_embeddings(client, embeddings[k], labels[k])
                for k, client in enumerate(clients)
            ]
            emodel.train()
        states = ensemble_state_dicts(emodel)
        return [
            ClientUpdate.from_client(client, state, float(loss), payload=payload)
            for client, state, loss, payload in zip(
                clients, states, mean_losses, payloads
            )
        ]

    def supports_streaming(self) -> bool:
        """Whether this round's aggregation can run as a streaming fold.

        True when the subclass kept the base :meth:`aggregate` (so the
        reduction really is the aggregator's) *and* the installed
        aggregator is online-reducible (``mean`` and its ``clip`` /
        ``edge`` compositions).  A strategy that overrides ``aggregate``
        — FedGMA's sign masking, FedDG-GA's gap reweighting — silently
        keeps the batch path that materializes the survivor list.
        """
        if type(self).aggregate is not Strategy.aggregate:
            return False
        return self.aggregator.streaming

    def begin_stream(self, global_state: StateDict) -> AggregationStream | None:
        """Open this round's streaming reduction, or ``None`` when the
        strategy/aggregator combination cannot stream.  The execution
        engine folds each accepted upload in (freeing its state) and
        :meth:`aggregate` finalizes."""
        if not self.supports_streaming():
            return None
        return self.aggregator.begin_stream(global_state)

    def aggregate(
        self,
        global_state: StateDict,
        updates: list[ClientUpdate],
        round_index: int,
        stream: AggregationStream | None = None,
    ) -> StateDict:
        """Merge client uploads into the next global state.

        Default: data-size-weighted FedAvg (paper §III-B Aggregation).

        ``update.state`` is always a *decoded* state dict: the execution
        engine strips any wire codec (delta reconstruction, dequantized
        fp16/qint8) before aggregation runs, so strategies never see the
        wire format.  Decoded tensors may be read-only zero-copy views —
        treat them as immutable and allocate fresh outputs, as
        :func:`repro.nn.serialize.average_states` does.

        The reduction itself is delegated to :attr:`aggregator`
        (:mod:`repro.fl.aggregate`), so every strategy built on this hook
        inherits whichever Byzantine-robust rule the run configured.

        ``stream`` is the round's in-flight streaming reduction (from
        :meth:`begin_stream`): the engine already folded every accepted
        upload in — ``update.state`` is freed to ``None`` on that path —
        so this call only finalizes.  Order invariance of the compensated
        mean makes the result bit-identical to the batch reduction.
        """
        self.fuse_payloads(updates, round_index)
        if stream is not None:
            if stream.count != len(updates):
                raise RuntimeError(
                    f"aggregation stream folded {stream.count} uploads but "
                    f"{len(updates)} were accepted — engine/stream mismatch"
                )
            if stream.count == 0:
                return global_state
            return stream.finalize()
        if not updates:
            return global_state
        states = [update.state for update in updates]
        weights = [float(update.num_samples) for update in updates]
        if sum(weights) <= 0:
            weights = [1.0] * len(states)
        return self.aggregator.aggregate(states, weights, ref=global_state)
