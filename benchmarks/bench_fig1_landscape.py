"""Figure 1 — loss-landscape divergence of two heterogeneous clients.

The paper's opening figure: under naive training, two clients holding
different domain mixtures have local loss minima far apart around the
global weights; with PARDON's interpolative style-transferred data the
minima (and thus the implicit local objectives) nearly coincide.

We quantify the figure: train FedAvg and PARDON on a two-client
domain-separated population, slice each client's loss surface through the
final global weights on a shared random plane, and report (a) where each
client's in-plane minimum sits, (b) the mean pairwise divergence of the
minima, and (c) each surface's sharpness.  Shape to check: divergence and
sharpness are lower for PARDON.
"""

from __future__ import annotations

import numpy as np

from common import bench_rounds, emit, samples_per_class

from repro.baselines import FedAvgStrategy
from repro.core import PardonStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.eval.landscape import (
    client_minima_divergence,
    loss_landscape_slice,
    surface_divergence,
)
from repro.fl import Client, FederatedConfig, FederatedServer
from repro.nn import build_cnn_model
from repro.utils.tables import format_table


def _run(suite) -> str:
    rounds = bench_rounds(15)
    partition = partition_clients(
        suite, [1, 2], 2, heterogeneity=0.0, rng=np.random.default_rng(0)
    )
    rows = []
    for name, strategy in (
        ("Naive (FedAvg)", FedAvgStrategy()),
        ("Ours (PARDON)", PardonStrategy()),
    ):
        clients = [
            Client(i, d) for i, d in enumerate(partition.client_datasets)
        ]
        model = build_cnn_model(
            suite.image_shape, suite.num_classes, rng=np.random.default_rng(1)
        )
        server = FederatedServer(
            strategy=strategy,
            clients=clients,
            model=model,
            eval_sets={"test": suite.datasets[3]},
            config=FederatedConfig(num_rounds=rounds, clients_per_round=2, seed=0),
        )
        result = server.run()
        slices = []
        for client in clients:
            # Each client's *effective* local objective: for PARDON that
            # includes the style-transferred data it actually trains on.
            data = client.dataset
            if isinstance(strategy, PardonStrategy):
                transferred = strategy._transferred_images(
                    client, np.random.default_rng(0)
                )
                from repro.data import LabeledDataset

                data = LabeledDataset(
                    images=np.concatenate([data.images, transferred]),
                    labels=np.concatenate([data.labels, data.labels]),
                    domain_ids=np.concatenate(
                        [data.domain_ids, data.domain_ids]
                    ),
                )
            slices.append(
                loss_landscape_slice(
                    model,
                    result.final_state,
                    data,
                    np.random.default_rng(42),  # same plane for all surfaces
                    radius=0.4,
                    grid_points=9,
                )
            )
        divergence = surface_divergence(slices)
        minima_gap = client_minima_divergence(slices)
        sharpness = np.mean([s.sharpness() for s in slices])
        rows.append(
            [
                name,
                f"{divergence:.4f}",
                f"{minima_gap:.3f}",
                f"{sharpness:.3f}",
                f"{result.final_accuracy['test']:.3f}",
            ]
        )
    return format_table(
        [
            "Training",
            "surface divergence (lower=aligned objectives)",
            "in-plane minima gap",
            "mean sharpness (lower=flatter)",
            "unseen-domain acc",
        ],
        rows,
        title="Fig. 1 — client loss-landscape alignment, naive vs PARDON",
    )


def test_fig1_landscape(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(lambda: _run(suite), rounds=1, iterations=1)
    emit("fig1_landscape", table)
