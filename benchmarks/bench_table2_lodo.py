"""Table II — LODO comparison on PACS and Office-Home stand-ins.

Three domains train, one is held out; report per-held-out-domain accuracy
and the average.  Shape to check: Ours best AVG; biggest margins on the
most style-shifted domains (cartoon/sketch analogues).
"""

from __future__ import annotations

import numpy as np

from common import (
    bench_rounds,
    bench_seeds,
    emit,
    method_factories,
    METHOD_ORDER,
    samples_per_class,
)

from repro.data import synthetic_office_home, synthetic_pacs
from repro.eval import ExperimentSetting, run_lodo_protocol
from repro.utils.tables import format_percent, format_table


def _setting(seed: int) -> ExperimentSetting:
    return ExperimentSetting(
        num_clients=20,
        clients_per_round=0.2,
        heterogeneity=0.1,
        num_rounds=bench_rounds(30),
        eval_every=bench_rounds(30),
        seed=seed,
    )


def _run_dataset(suite, title: str) -> str:
    factories = method_factories()
    rows = []
    for method in METHOD_ORDER:
        runs = []
        for seed in bench_seeds():
            outcomes = run_lodo_protocol(suite, factories[method], _setting(seed))
            runs.append(
                [outcomes[d].test_accuracy for d in suite.domain_names]
            )
        cells = list(np.mean(runs, axis=0))
        rows.append(
            [method]
            + [format_percent(c) for c in cells]
            + [format_percent(sum(cells) / len(cells))]
        )
    headers = ["Method"] + list(suite.domain_names) + ["AVG"]
    return format_table(headers, rows, title=title)


def test_table2_pacs(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(
        lambda: _run_dataset(suite, "Table II (LODO) — synthetic PACS"),
        rounds=1, iterations=1,
    )
    emit("table2_lodo_pacs", table)


def test_table2_office_home(benchmark):
    suite = synthetic_office_home(seed=0, samples_per_class=samples_per_class(4))
    table = benchmark.pedantic(
        lambda: _run_dataset(suite, "Table II (LODO) — synthetic Office-Home"),
        rounds=1, iterations=1,
    )
    emit("table2_lodo_office_home", table)
