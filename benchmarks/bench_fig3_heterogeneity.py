"""Figure 3 — convergence on the held-out sketch domain vs heterogeneity.

Paper setting: PACS, train on Art-Painting + Cartoon, test on Sketch,
lambda in {0, 0.1, 0.5, 1}.  Shape to check: Ours has the highest curve at
every lambda and reaches high accuracy earlier; the gap is largest at small
lambda (strong heterogeneity).
"""

from __future__ import annotations

from common import bench_rounds, emit, method_factories, METHOD_ORDER, samples_per_class

from repro.data import synthetic_pacs
from repro.eval import ExperimentSetting, run_split_experiment
from repro.utils.tables import format_percent, format_table

LAMBDAS = (0.0, 0.1, 0.5, 1.0)
SPLIT = {"train": [1, 2], "val": [0], "test": [3]}  # art+cartoon -> sketch


def _run(suite) -> str:
    factories = method_factories()
    rounds = bench_rounds(20)
    blocks = []
    for lam in LAMBDAS:
        rows = []
        series_rounds: list[int] | None = None
        for method in METHOD_ORDER:
            setting = ExperimentSetting(
                num_clients=16,
                clients_per_round=0.25,
                heterogeneity=lam,
                num_rounds=rounds,
                eval_every=max(rounds // 5, 1),
                seed=0,
            )
            outcome = run_split_experiment(
                suite, SPLIT, factories[method](), setting
            )
            series = outcome.result.history.accuracy_series("test")
            if series_rounds is None:
                series_rounds = [r for r, _ in series]
            rows.append([method] + [format_percent(a) for _, a in series])
        headers = ["Method"] + [f"r{r}" for r in (series_rounds or [])]
        blocks.append(
            format_table(
                headers, rows,
                title=f"Fig. 3 — test accuracy on sketch over rounds, lambda={lam}",
            )
        )
    return "\n\n".join(blocks)


def test_fig3_heterogeneity(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(lambda: _run(suite), rounds=1, iterations=1)
    emit("fig3_heterogeneity", table)
