"""Executor scaling — wall-clock of one federated run vs. worker count.

Complements Fig. 5 (accuracy vs. client count) with the systems half of the
scalability story: the same round loop, same seeds, and same trace, executed
serially and on process pools of 2 and 4 workers.  Reported per row: the
summed per-client compute time, the elapsed wall clock of the local phase,
and their ratio (the achieved speedup).  Shape to check: wall clock drops as
workers increase, bounded by the machine's core count.  The compute column
is per-worker wall time, so it inflates when workers outnumber free cores
(contention) — the speedup column is the honest headline number.
"""

from __future__ import annotations

import numpy as np

from common import bench_rounds, emit, samples_per_class

from repro.baselines import FedAvgStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    make_executor,
)
from repro.nn.models import build_cnn_model
from repro.utils.tables import format_table

CLIENTS_PER_ROUND = 8
NUM_CLIENTS = 16
WORKER_GRID = [1, 2, 4]


def _run_with_workers(suite, rounds: int, workers: int):
    partition = partition_clients(
        suite, [0, 1], NUM_CLIENTS, 0.1, np.random.default_rng(0)
    )
    clients = [Client(i, d) for i, d in enumerate(partition.client_datasets)]
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0)
    )
    executor = make_executor(
        "serial" if workers == 1 else "parallel",
        workers=None if workers == 1 else workers,
    )
    server = FederatedServer(
        strategy=FedAvgStrategy(LocalTrainingConfig(batch_size=32)),
        clients=clients,
        model=model,
        eval_sets={"test": suite.datasets[3]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=CLIENTS_PER_ROUND, seed=0
        ),
        executor=executor,
    )
    try:
        return server.run()
    finally:
        executor.close()


def _trace_of(result):
    """The full per-round trace plus the final accuracies — what must be
    engine-invariant."""
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _run(suite) -> str:
    rounds = bench_rounds(4)
    rows = []
    baseline_trace = None
    for workers in WORKER_GRID:
        result = _run_with_workers(suite, rounds, workers)
        timing = result.timing
        trace = _trace_of(result)
        if baseline_trace is None:
            baseline_trace = trace
        rows.append(
            [
                "serial" if workers == 1 else f"parallel x{workers}",
                f"{timing.local_train_seconds_total:.2f}",
                f"{timing.local_train_wall_seconds_total:.2f}",
                f"{timing.local_train_speedup:.2f}",
                "yes" if trace == baseline_trace else "NO",
            ]
        )
    return format_table(
        [
            "Executor",
            "compute (s, all clients)",
            "local wall clock (s)",
            "speedup",
            "trace == serial",
        ],
        rows,
        title=(
            f"Executor scaling — {rounds} rounds, "
            f"{CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients per round"
        ),
    )


def test_executor_scaling(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(lambda: _run(suite), rounds=1, iterations=1)
    emit("executor_scaling", table)


if __name__ == "__main__":
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    emit("executor_scaling", _run(suite))
