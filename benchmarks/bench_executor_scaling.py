"""Executor scaling — wall-clock and wire traffic vs. worker count.

Complements Fig. 5 (accuracy vs. client count) with the systems half of the
scalability story: the same round loop, same seeds, and same trace, executed
serially and on process pools of 2 and 4 workers.  Reported per row: the
summed per-client compute time, the elapsed wall clock of the local phase,
their ratio (the achieved speedup), and the measured bytes the engine moved
across the process boundary.  Shape to check: wall clock drops as workers
increase, bounded by the machine's core count.  The compute column is
per-worker wall time, so it inflates when workers outnumber free cores
(contention) — the speedup column is the honest headline number.

The second table isolates the wire protocol on the PARDON strategy (the
dataset-scale scratch cache is the worst case): per-round task payload under
the pool-resident delta protocol vs. what PR 1's ship-everything-per-task
protocol would have moved.  Shape to check: task bytes shrink by orders of
magnitude (the dataset ships once at registration), and the upload collapses
after round 0 because the style-transfer cache travels as a delta exactly
once.

Run directly for the full table, or with ``--smoke`` for the CI-scale
variant (fast data scale, workers {1, 2}).
"""

from __future__ import annotations

import pickle
import sys

import numpy as np

from common import bench_rounds, emit, samples_per_class

from repro.baselines import FedAvgStrategy
from repro.core import PardonStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    make_executor,
)
from repro.nn.models import build_cnn_model
from repro.utils.tables import format_table

CLIENTS_PER_ROUND = 8
NUM_CLIENTS = 16
WORKER_GRID = [1, 2, 4]


def _make_clients(suite):
    partition = partition_clients(
        suite, [0, 1], NUM_CLIENTS, 0.1, np.random.default_rng(0)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _run_with_workers(suite, rounds: int, workers: int, strategy=None):
    clients = _make_clients(suite)
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0)
    )
    executor = make_executor(
        "serial" if workers == 1 else "parallel",
        workers=None if workers == 1 else workers,
    )
    server = FederatedServer(
        strategy=strategy or FedAvgStrategy(LocalTrainingConfig(batch_size=32)),
        clients=clients,
        model=model,
        eval_sets={"test": suite.datasets[3]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=CLIENTS_PER_ROUND, seed=0
        ),
        executor=executor,
    )
    try:
        return server.run(), executor, clients
    finally:
        executor.close()


def _trace_of(result):
    """The full per-round trace plus the final accuracies — what must be
    engine-invariant."""
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _run(suite, worker_grid) -> str:
    rounds = bench_rounds(4)
    rows = []
    baseline_trace = None
    for workers in worker_grid:
        result, _, _ = _run_with_workers(suite, rounds, workers)
        timing = result.timing
        trace = _trace_of(result)
        if baseline_trace is None:
            baseline_trace = trace
        rows.append(
            [
                "serial" if workers == 1 else f"parallel x{workers}",
                f"{timing.local_train_seconds_total:.2f}",
                f"{timing.local_train_wall_seconds_total:.2f}",
                f"{timing.local_train_speedup:.2f}",
                f"{timing.bytes_up / 1024:.0f}",
                f"{timing.bytes_down / 1024:.0f}",
                "yes" if trace == baseline_trace else "NO",
            ]
        )
    return format_table(
        [
            "Executor",
            "compute (s, all clients)",
            "local wall clock (s)",
            "speedup",
            "wire up (KiB)",
            "wire down (KiB)",
            "trace == serial",
        ],
        rows,
        title=(
            f"Executor scaling — {rounds} rounds, "
            f"{CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients per round"
        ),
    )


def _legacy_round_bytes(result, clients) -> tuple[float, float]:
    """What PR 1's protocol would move per round: every task tuple re-ships
    ``(strategy_blob, global_state, client)`` down and the full scratch dict
    plus state back up.  Measured over the run's *actual* participant
    sequence, on the post-run clients whose scratch holds the warm PARDON
    cache — exactly the payload the old protocol paid every round."""
    from repro.nn.serialize import encode_payload

    strategy_blob = encode_payload(PardonStrategy())
    state = dict(result.final_state)
    by_id = {client.client_id: client for client in clients}
    down = up = 0
    for record in result.history.records:
        for client_id in record.participants:
            client = by_id[client_id]
            down += len(
                pickle.dumps(
                    (strategy_blob, state, client, record.round_index, 0),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            up += len(
                pickle.dumps(
                    (state, dict(client.scratch)),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
    rounds = len(result.history.records)
    return down / rounds, up / rounds


def _run_wire(suite) -> str:
    rounds = max(3, bench_rounds(4))
    result, executor, clients = _run_with_workers(
        suite, rounds, 2, strategy=PardonStrategy()
    )
    wire = executor.wire_stats()
    legacy_down, legacy_up = _legacy_round_bytes(result, clients)
    resident_task = wire.task_bytes / rounds
    resident_down = (wire.broadcast_bytes + wire.task_bytes) / rounds
    rows = [
        [
            "PR 1 (ship client per task)",
            f"{legacy_down / 1024:.0f}",
            f"{legacy_down / 1024:.0f}",
            f"{legacy_up / 1024:.0f}",
            "0",
        ],
        [
            "pool-resident + deltas",
            f"{resident_task / 1024:.2f}",
            f"{resident_down / 1024:.0f}",
            f"{wire.upload_bytes / rounds / 1024:.0f}",
            f"{wire.registration_bytes / 1024:.0f}",
        ],
        [
            "reduction",
            f"x{legacy_down / max(resident_task, 1):.0f}",
            f"x{legacy_down / max(resident_down, 1):.1f}",
            f"x{legacy_up / max(wire.upload_bytes / rounds, 1):.1f}",
            "-",
        ],
    ]
    return format_table(
        [
            "Wire protocol (PARDON)",
            "task KiB/round",
            "down KiB/round",
            "up KiB/round",
            "one-time KiB",
        ],
        rows,
        title=(
            f"Per-round task payload — resident+delta protocol vs. PR 1 "
            f"({rounds} rounds, {CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients, "
            f"2 workers)"
        ),
    )


def _tables(suite, worker_grid) -> str:
    return _run(suite, worker_grid) + "\n\n" + _run_wire(suite)


def test_executor_scaling(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(
        lambda: _tables(suite, WORKER_GRID), rounds=1, iterations=1
    )
    emit("executor_scaling", table)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        import os

        os.environ.setdefault("REPRO_BENCH_SCALE", "fast")
    grid = [1, 2] if smoke else WORKER_GRID
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    emit("executor_scaling", _tables(suite, grid))
