"""Executor scaling — wall-clock and wire traffic vs. worker count.

Complements Fig. 5 (accuracy vs. client count) with the systems half of the
scalability story: the same round loop, same seeds, and same trace, executed
serially and on process pools of 2 and 4 workers.  Reported per row: the
summed per-client compute time, the elapsed wall clock of the local phase,
their ratio (the achieved speedup), and the measured bytes the engine moved
across the process boundary.  Shape to check: wall clock drops as workers
increase, bounded by the machine's core count.  The compute column is
per-worker wall time, so it inflates when workers outnumber free cores
(contention) — the speedup column is the honest headline number.

The second table isolates the wire protocol on the PARDON strategy (the
dataset-scale scratch cache is the worst case): per-round task payload under
the pool-resident delta protocol vs. what PR 1's ship-everything-per-task
protocol would have moved.  Shape to check: task bytes shrink by orders of
magnitude (the dataset ships once at registration), and the upload collapses
after round 0 because the style-transfer cache travels as a delta exactly
once.

The third table measures the codec stack (``repro.fl.codec``): warm
per-round bytes on the 2-worker engine per codec, in the from-scratch
training regime *and* the fine-tuning regime (tiny updates).  Shape to
check: ``delta`` sits near the lossless entropy bound (~1.3x) from scratch
and clears 2x fine-tuning; ``fp16``/``qint8`` cut weight bytes by 4x/8x in
both regimes (lossy).

The fourth table measures the wire transports (``repro.fl.transport``):
per-round downlink vs. the fan-out-deduplicated unique floor, and the
broadcast encode + dispatch + overlapped-decode wall clock, per transport
and worker count.  Shape to check: pipe's down bytes scale with workers
while shm's sit on the unique floor (the blob is written once per round),
and shm's broadcast wall clock is at or below pipe's at 4 workers (the
per-worker pickle+pipe copies are what shm deletes).  The second/third
tables pin ``transport="pipe"`` so their per-worker byte stories stay
comparable across releases.

The fifth table measures the fault-tolerance layer (``repro.fl.faults``):
per-round wall clock with faults off vs. under 25% injected stragglers,
per engine, plus the dropped/straggler/rebuilt counters.  Shape to check:
the parallel engines absorb the straggler sleeps across workers (smaller
wall-clock hit than serial), and the faulty trace still matches the
serial faulty trace bit-for-bit.

The sixth table measures the compute backends (``repro.fl.compute``) in
the regime the ensemble backend targets: many small co-resident clients
(the CSAC-style separated per-source populations of PAPERS.md), swept at
K=1/4/16 clients per group on the serial engine, loop vs. ensemble.
Shape to check: per-round wall clock crosses over around K=4 and reaches
>= 3x at K=16, with the final aggregated state bit-identical — the
speedup is pure dispatch fusion, not a numerics change.  The sweep is
also written as ``BENCH_compute.json`` for machine consumers.

The seventh table measures the robust-aggregation layer
(``repro.fl.aggregate``): final accuracy per rule (mean, median,
trimmed-mean, krum), fault-free vs. under 20% Byzantine clients sending
100x-scaled updates, plus the rejected-upload count and the per-round
aggregation cost.  Shape to check: the mean collapses under attack while
the robust rules hold near their own clean accuracy at millisecond
aggregation cost.  The sweep is also written as ``BENCH_robust.json``.

The eighth table measures the objective-driven strategies
(``repro.nn.objective``): final accuracy and local-compute overhead per
method (fedavg, fedsr, fpl, fedalign, fedccrl) on the same serial
session.  Shape to check: each method's extra terms/views/payload sweeps
cost a small constant factor over FedAvg, not a blowup.  The sweep is
also written as ``BENCH_strategies.json``.

Run directly for the full table, or with ``--smoke`` for the CI-scale
variant (fast data scale, workers {1, 2}); either way, legs whose wire
transport is unavailable on the host (shm on shm-less runners) are
skipped with an explicit message instead of erroring.  ``--codec SPEC``
runs the scaling table under that wire codec — the CI codec matrix uses
it to check serial/parallel trace identity per codec — ``--transport
SPEC`` runs it under that wire transport (the CI shm leg), ``--compute
SPEC`` runs it under that compute backend (the CI compute legs pin
loop-vs-ensemble trace identity), ``--faults SPEC`` (with an optional
``--deadline``) runs it under that fault plan — the CI chaos legs use it
to check that a faulty trace stays engine-invariant end to end — and
``--aggregator SPEC`` runs it under that aggregation rule (the CI
byzantine legs pair it with a Byzantine fault plan), and ``--strategy
NAME`` runs it under that training strategy (the CI strategy legs pin
the sibling FedDG methods' serial/parallel trace identity per
transport).
"""

from __future__ import annotations

import argparse
import os
import pickle
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from common import bench_rounds, emit, emit_json, is_fast_mode, samples_per_class

from repro.baselines import (
    FedAlignStrategy,
    FedAvgStrategy,
    FedCCRLStrategy,
    FedSRStrategy,
    FPLStrategy,
)
from repro.core import PardonStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.data.synthetic import LabeledDataset
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LazyPopulation,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    shm_supported,
)
from repro.fl.net import RemoteExecutor
from repro.nn.models import build_cnn_model
from repro.utils.rng import SeedTree
from repro.utils.tables import format_table

CLIENTS_PER_ROUND = 8
NUM_CLIENTS = 16
WORKER_GRID = [1, 2, 4]
CODEC_GRID = ["identity", "delta", "fp16", "qint8", "qint8+deflate"]
#: The fault-table plan: a quarter of the (client, round) cells are slow.
STRAGGLER_PLAN = "straggler=0.25:0.05,seed=3"
#: The robust-table attack: a fifth of the cells upload a 100x-scaled
#: update — the Byzantine mode that visibly drags a weighted mean.
BYZANTINE_PLAN = "byzantine=0.2:scale,seed=7"
#: The strategy-matrix legs and the per-strategy table draw from these
#: objective-driven methods (the loop-level strategies have their own
#: wire table above).
STRATEGY_FACTORIES = {
    "fedavg": lambda: FedAvgStrategy(LocalTrainingConfig(batch_size=32)),
    "fedsr": lambda: FedSRStrategy(
        local_config=LocalTrainingConfig(batch_size=32)
    ),
    "fpl": lambda: FPLStrategy(
        local_config=LocalTrainingConfig(batch_size=32)
    ),
    "fedalign": lambda: FedAlignStrategy(
        local_config=LocalTrainingConfig(batch_size=32)
    ),
    "fedccrl": lambda: FedCCRLStrategy(
        local_config=LocalTrainingConfig(batch_size=32)
    ),
}


def _make_clients(suite):
    partition = partition_clients(
        suite, [0, 1], NUM_CLIENTS, 0.1, np.random.default_rng(0)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _run_with_workers(
    suite, rounds: int, workers: int, strategy=None, codec="identity",
    transport="auto", faults=None, deadline=None, compute="auto",
    aggregator="mean",
):
    clients = _make_clients(suite)
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0)
    )
    executor = make_executor(
        "serial" if workers == 1 else "parallel",
        workers=None if workers == 1 else workers,
        codec=codec,
        transport=transport,
        faults=faults,
        deadline=deadline,
        compute=compute,
    )
    server = FederatedServer(
        strategy=strategy or FedAvgStrategy(LocalTrainingConfig(batch_size=32)),
        clients=clients,
        model=model,
        eval_sets={"test": suite.datasets[3]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=CLIENTS_PER_ROUND, seed=0,
            codec=codec, transport=transport, faults=faults, deadline=deadline,
            compute=compute, aggregator=aggregator,
        ),
        executor=executor,
    )
    try:
        return server.run(), executor, clients
    finally:
        executor.close()


def _trace_of(result):
    """The full per-round trace — including the fault layer's drop map —
    plus the final accuracies: what must be engine-invariant."""
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.dropped.items())),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _run(
    suite, worker_grid, codec="identity", transport="auto", faults=None,
    deadline=None, compute="auto", aggregator="mean", strategy="fedavg",
) -> str:
    rounds = bench_rounds(4)
    rows = []
    baseline_trace = None
    for workers in worker_grid:
        result, _, _ = _run_with_workers(
            suite, rounds, workers, codec=codec, transport=transport,
            faults=faults, deadline=deadline, compute=compute,
            aggregator=aggregator, strategy=STRATEGY_FACTORIES[strategy](),
        )
        timing = result.timing
        trace = _trace_of(result)
        if baseline_trace is None:
            baseline_trace = trace
        rows.append(
            [
                "serial" if workers == 1 else f"parallel x{workers}",
                f"{timing.local_train_seconds_total:.2f}",
                f"{timing.local_train_wall_seconds_total:.2f}",
                f"{timing.local_train_speedup:.2f}",
                f"{timing.bytes_up / 1024:.0f}",
                f"{timing.bytes_down / 1024:.0f}",
                "yes" if trace == baseline_trace else "NO",
            ]
        )
    return format_table(
        [
            "Executor",
            "compute (s, all clients)",
            "local wall clock (s)",
            "speedup",
            "wire up (KiB)",
            "wire down (KiB)",
            "trace == serial",
        ],
        rows,
        title=(
            f"Executor scaling — {rounds} rounds, "
            f"{CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients per round, "
            f"codec={codec}, transport={transport}, compute={compute}"
            + (f", faults={faults}" if faults else "")
            + (f", aggregator={aggregator}" if aggregator != "mean" else "")
            + (f", strategy={strategy}" if strategy != "fedavg" else "")
        ),
    )


def _legacy_round_bytes(result, clients) -> tuple[float, float]:
    """What PR 1's protocol would move per round: every task tuple re-ships
    ``(strategy_blob, global_state, client)`` down and the full scratch dict
    plus state back up.  Measured over the run's *actual* participant
    sequence, on the post-run clients whose scratch holds the warm PARDON
    cache — exactly the payload the old protocol paid every round."""
    from repro.nn.serialize import encode_payload

    strategy_blob = encode_payload(PardonStrategy())
    state = dict(result.final_state)
    by_id = {client.client_id: client for client in clients}
    down = up = 0
    for record in result.history.records:
        for client_id in record.participants:
            client = by_id[client_id]
            down += len(
                pickle.dumps(
                    (strategy_blob, state, client, record.round_index, 0),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            up += len(
                pickle.dumps(
                    (state, dict(client.scratch)),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
    rounds = len(result.history.records)
    return down / rounds, up / rounds


def _run_wire(suite) -> str:
    rounds = max(3, bench_rounds(4))
    result, executor, clients = _run_with_workers(
        suite, rounds, 2, strategy=PardonStrategy(), transport="pipe"
    )
    wire = executor.wire_stats()
    legacy_down, legacy_up = _legacy_round_bytes(result, clients)
    resident_task = wire.task_bytes / rounds
    resident_down = (wire.broadcast_bytes + wire.task_bytes) / rounds
    rows = [
        [
            "PR 1 (ship client per task)",
            f"{legacy_down / 1024:.0f}",
            f"{legacy_down / 1024:.0f}",
            f"{legacy_up / 1024:.0f}",
            "0",
        ],
        [
            "pool-resident + deltas",
            f"{resident_task / 1024:.2f}",
            f"{resident_down / 1024:.0f}",
            f"{wire.upload_bytes / rounds / 1024:.0f}",
            f"{wire.registration_bytes / 1024:.0f}",
        ],
        [
            "reduction",
            f"x{legacy_down / max(resident_task, 1):.0f}",
            f"x{legacy_down / max(resident_down, 1):.1f}",
            f"x{legacy_up / max(wire.upload_bytes / rounds, 1):.1f}",
            "-",
        ],
    ]
    return format_table(
        [
            "Wire protocol (PARDON)",
            "task KiB/round",
            "down KiB/round",
            "up KiB/round",
            "one-time KiB",
        ],
        rows,
        title=(
            f"Per-round task payload — resident+delta protocol vs. PR 1 "
            f"({rounds} rounds, {CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients, "
            f"2 workers)"
        ),
    )


def _codec_round_bytes(suite, codec: str, local_config, rounds: int):
    """Measured (bytes_up + bytes_down) per round, hop-by-hop on the
    2-worker engine, with the scaling table's participant count.  Round 0
    includes registration; the warm average over later rounds is what a
    long session pays."""
    clients = _make_clients(suite)[:CLIENTS_PER_ROUND]
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0)
    )
    strategy = FedAvgStrategy(local_config)
    state = model.state_dict()
    tree = SeedTree(0).child("server", "codec-bench")
    totals = []
    with ParallelExecutor(num_workers=2, codec=codec, transport="pipe") as executor:
        for round_index in range(rounds):
            before = executor.wire_stats()
            seeds = [
                tree.seed("client", client.client_id, "round", round_index)
                for client in clients
            ]
            updates = executor.run_round(
                strategy, model, state, clients, round_index, seeds
            )
            after = executor.wire_stats()
            totals.append(
                (after.bytes_up - before.bytes_up)
                + (after.bytes_down - before.bytes_down)
            )
            state = strategy.aggregate(state, updates, round_index)
    return totals


def _run_codecs(suite) -> str:
    """Bytes-per-round per codec, from-scratch vs. fine-tune regimes."""
    rounds = max(3, bench_rounds(4))
    train = LocalTrainingConfig(batch_size=32)
    fine_tune = LocalTrainingConfig(batch_size=32, learning_rate=1e-8)
    warm = {}
    for codec in CODEC_GRID:
        warm[codec] = tuple(
            sum(_codec_round_bytes(suite, codec, config, rounds)[1:]) / (rounds - 1)
            for config in (train, fine_tune)
        )
    base_train, base_tune = warm["identity"]
    rows = []
    for codec in CODEC_GRID:
        codec_train, codec_tune = warm[codec]
        lossless = codec in ("identity", "delta")
        rows.append(
            [
                codec,
                f"{codec_train / 1024:.0f}",
                f"x{base_train / codec_train:.2f}",
                f"{codec_tune / 1024:.0f}",
                f"x{base_tune / codec_tune:.2f}",
                "bit-exact" if lossless else "lossy",
            ]
        )
    return format_table(
        [
            "Codec",
            "train KiB/round",
            "vs identity",
            "fine-tune KiB/round",
            "vs identity",
            "trace",
        ],
        rows,
        title=(
            f"Wire codecs — warm bytes/round on 2 workers "
            f"({CLIENTS_PER_ROUND} participants; fine-tune = tiny updates, "
            f"where delta's lossless compression pays)"
        ),
    )


def _transport_rounds(
    suite, transport: str, workers: int, model, init_state, rounds: int
):
    """Run ``rounds`` FedAvg rounds on one engine configuration and return
    (final aggregated state, executor) for the transport sweep.

    ``init_state`` is snapshotted by the caller: the serial engine trains
    on ``model`` in place, so the model's own weights are not a stable
    starting point across configurations."""
    clients = _make_clients(suite)[:CLIENTS_PER_ROUND]
    strategy = FedAvgStrategy(LocalTrainingConfig(batch_size=32))
    state = {key: value.copy() for key, value in init_state.items()}
    tree = SeedTree(0).child("server", "transport-bench")
    executor = make_executor(
        "serial" if workers == 1 else "parallel",
        workers=None if workers == 1 else workers,
        transport=transport if workers > 1 else "auto",
    )
    with executor:
        for round_index in range(rounds):
            seeds = [
                tree.seed("client", client.client_id, "round", round_index)
                for client in clients
            ]
            updates = executor.run_round(
                strategy, model, state, clients, round_index, seeds
            )
            state = strategy.aggregate(state, updates, round_index)
    return state, executor


def _run_transports(suite, worker_grid) -> str:
    """Per-transport downlink bytes and broadcast wall clock.

    "down" is what the workers actually received per round (pipe copies
    the blob per worker); "unique down" is the fan-out-deduplicated floor
    (one blob per round) both transports share.  "bcast floor" is the
    fastest *warm* round's broadcast path — server-side encode+publish,
    dispatch latency to the slowest worker's handler entry, and the
    workers' overlapped lazy decode.  The minimum (not the mean) is
    reported because on an oversubscribed box the dispatch latency is
    dominated by OS scheduling noise; the floor is where the transports'
    structural difference — N pickled pipe copies vs. one shm publish —
    shows through.  A production-scale state (a few MiB) is used for the
    same reason: at bench-model sizes the copies vanish under the noise.
    Round 0 (pool spin-up, cold caches) is excluded, as are registration
    bytes from both byte columns.
    """
    from repro.fl import shm_supported

    rounds = max(3, bench_rounds(6))
    transports = ["pipe"] + (["shm"] if shm_supported() else [])
    grid = [workers for workers in worker_grid if workers > 1] or [2]
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0),
        widths=(48, 96), embed_dim=256,
    )
    init_state = {
        key: value.copy() for key, value in model.state_dict().items()
    }
    state_kib = sum(v.nbytes for v in init_state.values()) / 1024
    serial_state, _ = _transport_rounds(suite, "auto", 1, model, init_state, rounds)
    rows = []
    for transport in transports:
        for workers in grid:
            final_state, executor = _transport_rounds(
                suite, transport, workers, model, init_state, rounds
            )
            wire = executor.wire_stats()
            floor_ms = 1e3 * (
                min(executor.broadcast_encode_rounds[1:])
                + min(executor.broadcast_dispatch_rounds[1:])
                + min(executor.broadcast_decode_rounds[1:])
            )
            decode_ms = 1e3 * min(executor.broadcast_decode_rounds[1:])
            identical = all(
                np.array_equal(final_state[key], serial_state[key])
                for key in serial_state
            )
            rows.append(
                [
                    f"{transport} x{workers}",
                    f"{(wire.broadcast_bytes + wire.task_bytes) / rounds / 1024:.0f}",
                    f"{(wire.unique_broadcast_bytes + wire.task_bytes) / rounds / 1024:.0f}",
                    f"{floor_ms:.1f}",
                    f"{decode_ms:.2f}",
                    "yes" if identical else "NO",
                ]
            )
    return format_table(
        [
            "Transport",
            "down KiB/round",
            "unique down KiB/round",
            "bcast floor (ms/round)",
            "of which decode (ms)",
            "state == serial",
        ],
        rows,
        title=(
            f"Wire transports — broadcast fan-out cost per round "
            f"({rounds} rounds, {CLIENTS_PER_ROUND} participants, "
            f"{state_kib:.0f} KiB state; shm publishes one copy per round, "
            f"pipe one per worker)"
        ),
    )


def _run_faults_table(suite, worker_grid) -> str:
    """Round time with faults off vs. under 25% injected stragglers.

    Each straggler sleeps its injected delay inside the local phase, so
    the serial engine pays every sleep back to back while the parallel
    engines overlap them across workers — the wall-clock column is the
    robustness half of the scalability story.  The faulty runs also pin
    the chaos invariance: every engine's faulty trace must equal the
    serial faulty trace (the plan, not the engine, decides who survives).
    """
    rounds = max(3, bench_rounds(4))
    grid = [1] + [workers for workers in worker_grid if workers > 1]
    rows = []
    for faults in (None, STRAGGLER_PLAN):
        baseline_trace = None
        for workers in grid:
            result, _, _ = _run_with_workers(
                suite, rounds, workers, faults=faults,
                deadline=30.0 if faults else None,
            )
            timing = result.timing
            trace = _trace_of(result)
            if baseline_trace is None:
                baseline_trace = trace
            rows.append(
                [
                    "serial" if workers == 1 else f"parallel x{workers}",
                    "off" if faults is None else "25% stragglers",
                    f"{timing.local_train_wall_seconds_total / rounds:.2f}",
                    f"{timing.dropped_clients}",
                    f"{timing.straggler_seconds:.2f}",
                    f"{timing.rebuilt_workers}",
                    "yes" if trace == baseline_trace else "NO",
                ]
            )
    return format_table(
        [
            "Executor",
            "faults",
            "local wall (s/round)",
            "dropped",
            "straggler (s)",
            "rebuilt",
            "trace == serial",
        ],
        rows,
        title=(
            f"Fault tolerance — round time under injected stragglers "
            f"({rounds} rounds, {CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients, "
            f"plan '{STRAGGLER_PLAN}')"
        ),
    )


def _compute_rounds(spec: str, clients, model, init_state, rounds: int):
    """Run ``rounds`` all-clients FedAvg rounds on the serial engine under
    one compute backend; return (final state, per-round wall seconds).

    Two local epochs, as a federated round actually runs them: the fixed
    per-round costs both backends share (state load, update extraction)
    amortize over the epoch loop, so the table measures the training path
    rather than the bookkeeping."""
    strategy = FedAvgStrategy(LocalTrainingConfig(batch_size=8, local_epochs=2))
    state = {key: value.copy() for key, value in init_state.items()}
    tree = SeedTree(0).child("server", "compute-bench")
    timings = []
    with SerialExecutor(compute=spec) as executor:
        for round_index in range(rounds):
            seeds = [
                tree.seed("client", client.client_id, "round", round_index)
                for client in clients
            ]
            begin = time.perf_counter()
            updates = executor.run_round(
                strategy, model, state, clients, round_index, seeds
            )
            timings.append(time.perf_counter() - begin)
            state = strategy.aggregate(state, updates, round_index)
    return state, timings


def _run_compute(worker_grid) -> str:
    """Loop-vs-ensemble round time at K co-resident clients per group.

    Runs in the ensemble backend's motivating regime — many small clients
    sharing one process, where the loop backend's cost is per-client Python
    and layer dispatch rather than BLAS time: a compute-shaped small CNN
    (8x8 inputs, widths (6, 12)) over clients holding a handful of samples
    each, every client participating every round, on the serial engine so
    the grouping is a single K-stack.  At paper scale (16x16 inputs,
    ~35-sample clients) both backends are memory-bandwidth-bound and the
    table would flatline near x1 — the sweep deliberately measures the
    dispatch-bound end, which is also where `auto`'s crossover with the
    process pool moves (see AUTO_CROSSOVER_TASKS).  The warm minimum over
    rounds 1+ is reported: round 0 pays one-time ensemble clone
    construction and numpy warm-up, and the minimum is the schedule-noise-
    free floor on an oversubscribed box.  ``worker_grid`` is unused (the
    sweep is serial by construction) but kept for signature symmetry with
    the other table builders.
    """
    del worker_grid
    rounds = max(3, bench_rounds(6))
    small = synthetic_pacs(
        seed=0, samples_per_class=samples_per_class(8), image_size=8
    )
    rows = []
    payload = {"rounds": rounds, "unit": "ms_per_round_warm_min", "sweep": []}
    for num_clients in (1, 4, 16):
        partition = partition_clients(
            small, [0, 1], num_clients, 0.1, np.random.default_rng(0)
        )
        clients = [
            Client(i, d) for i, d in enumerate(partition.client_datasets)
        ]
        model = build_cnn_model(
            small.image_shape, small.num_classes,
            rng=np.random.default_rng(0), widths=(6, 12), embed_dim=32,
        )
        init_state = {
            key: value.copy() for key, value in model.state_dict().items()
        }
        loop_state, loop_times = _compute_rounds(
            "loop", clients, model, init_state, rounds
        )
        ens_state, ens_times = _compute_rounds(
            "ensemble", clients, model, init_state, rounds
        )
        loop_ms = 1e3 * min(loop_times[1:])
        ens_ms = 1e3 * min(ens_times[1:])
        identical = set(loop_state) == set(ens_state) and all(
            np.array_equal(loop_state[key], ens_state[key])
            for key in loop_state
        )
        rows.append(
            [
                f"{num_clients}",
                f"{sum(c.num_samples for c in clients) // num_clients}",
                f"{loop_ms:.2f}",
                f"{ens_ms:.2f}",
                f"x{loop_ms / ens_ms:.2f}",
                "yes" if identical else "NO",
            ]
        )
        payload["sweep"].append(
            {
                "clients": num_clients,
                "loop_ms": round(loop_ms, 3),
                "ensemble_ms": round(ens_ms, 3),
                "speedup": round(loop_ms / ens_ms, 3),
                "bitwise_identical": bool(identical),
            }
        )
    emit_json("compute", payload)
    return format_table(
        [
            "K (clients/group)",
            "samples/client",
            "loop (ms/round)",
            "ensemble (ms/round)",
            "speedup",
            "state bit-identical",
        ],
        rows,
        title=(
            f"Compute backends — serial round time, loop vs. ensemble "
            f"({rounds} rounds, 8x8 CNN, all K clients stacked per round; "
            f"warm minimum)"
        ),
    )


def _run_robust(suite) -> str:
    """Accuracy and aggregation cost per robust rule, clean vs. attacked.

    Each rule runs the same serial FedAvg session twice: fault-free, and
    with 20% of the (client, round) cells Byzantine (the ``scale`` mode —
    the update blown up 100x, the attack that actually moves a mean).
    Shape to check: the mean collapses under attack while the robust rules
    hold near their own clean accuracy, at an aggregation cost that stays
    in the milliseconds.  The "rejected" column counts uploads the rule
    excluded outright (krum's non-selected peers) — the mean and median
    reject nobody; they differ in how much a bad upload *weighs*.  The
    sweep is also written as ``BENCH_robust.json`` for machine consumers.
    """
    rounds = max(3, bench_rounds(4))
    rules = ["mean", "median", "trimmed_mean(1)", "krum"]
    rows = []
    payload = {
        "rounds": rounds,
        "attack": BYZANTINE_PLAN,
        "unit": "test_accuracy",
        "sweep": [],
    }
    for rule in rules:
        cells = {}
        for faults in (None, BYZANTINE_PLAN):
            result, _, _ = _run_with_workers(
                suite, rounds, 1, faults=faults, aggregator=rule,
            )
            cells["attacked" if faults else "clean"] = result
        clean = cells["clean"].final_accuracy["test"]
        attacked = cells["attacked"].final_accuracy["test"]
        timing = cells["attacked"].timing
        rows.append(
            [
                rule,
                f"{clean:.3f}",
                f"{attacked:.3f}",
                f"{attacked - clean:+.3f}",
                f"{timing.rejected_uploads}",
                f"{1e3 * timing.aggregation_seconds_mean:.2f}",
            ]
        )
        payload["sweep"].append(
            {
                "rule": rule,
                "clean_accuracy": round(clean, 4),
                "attacked_accuracy": round(attacked, 4),
                "rejected_uploads": timing.rejected_uploads,
                "aggregation_ms_per_round": round(
                    1e3 * timing.aggregation_seconds_mean, 3
                ),
            }
        )
    emit_json("robust", payload)
    return format_table(
        [
            "Aggregator",
            "clean acc",
            "attacked acc",
            "delta",
            "rejected",
            "aggregation (ms/round)",
        ],
        rows,
        title=(
            f"Robust aggregation — final accuracy under Byzantine clients "
            f"({rounds} rounds, {CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients, "
            f"attack '{BYZANTINE_PLAN}')"
        ),
    )


def _run_strategies(suite) -> str:
    """Accuracy and local-compute overhead per objective-driven strategy.

    Each strategy runs the same serial session as the scaling table's
    baseline; reported per row: final unseen-domain accuracy, its delta
    against FedAvg, the local-training wall clock per round, and the
    overhead factor over FedAvg — what each method's extra objective
    terms, second views, and payload sweeps actually cost.  Shape to
    check: the sibling methods land within a small constant factor of
    FedAvg (their terms are vectorized batch math, not per-sample
    Python), and no method collapses below FedAvg at this scale.  The
    sweep is also written as ``BENCH_strategies.json``.
    """
    rounds = max(3, bench_rounds(4))
    rows = []
    payload = {
        "rounds": rounds,
        "baseline": "fedavg",
        "unit": "test_accuracy",
        "sweep": [],
    }
    baseline_acc = baseline_wall = None
    for name in STRATEGY_FACTORIES:
        result, _, _ = _run_with_workers(
            suite, rounds, 1, strategy=STRATEGY_FACTORIES[name]()
        )
        accuracy = result.final_accuracy["test"]
        wall = result.timing.local_train_wall_seconds_total / rounds
        if baseline_acc is None:
            baseline_acc, baseline_wall = accuracy, wall
        rows.append(
            [
                name,
                f"{accuracy:.3f}",
                f"{accuracy - baseline_acc:+.3f}",
                f"{wall:.2f}",
                f"x{wall / baseline_wall:.2f}",
            ]
        )
        payload["sweep"].append(
            {
                "strategy": name,
                "test_accuracy": round(accuracy, 4),
                "accuracy_vs_fedavg": round(accuracy - baseline_acc, 4),
                "local_wall_s_per_round": round(wall, 4),
                "overhead_vs_fedavg": round(wall / baseline_wall, 3),
            }
        )
    emit_json("strategies", payload)
    return format_table(
        [
            "Strategy",
            "test acc",
            "vs fedavg",
            "local wall (s/round)",
            "overhead",
        ],
        rows,
        title=(
            f"Strategies — accuracy and local-compute overhead vs FedAvg "
            f"({rounds} rounds, {CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients, "
            f"serial)"
        ),
    )


def _net_transport_rounds(suite, transport: str, codec: str, rounds: int):
    """Run one 2-worker engine configuration for the networking sweep;
    returns (wire stats, per-round wall seconds)."""
    clients = _make_clients(suite)[:CLIENTS_PER_ROUND]
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0)
    )
    strategy = FedAvgStrategy(LocalTrainingConfig(batch_size=32))
    state = {key: value.copy() for key, value in model.state_dict().items()}
    tree = SeedTree(0).child("server", "net-bench")
    walls = []
    with ParallelExecutor(
        num_workers=2, codec=codec, transport=transport
    ) as executor:
        for round_index in range(rounds):
            seeds = [
                tree.seed("client", client.client_id, "round", round_index)
                for client in clients
            ]
            begin = time.perf_counter()
            updates = executor.run_round(
                strategy, model, state, clients, round_index, seeds
            )
            walls.append(time.perf_counter() - begin)
            state = strategy.aggregate(state, updates, round_index)
        wire = executor.wire_stats()
    return wire, walls


#: The remote leg's local recipe: small batches and several epochs, so
#: each agent's training phase is long enough for the pipelined overlap
#: to be measurable above the loopback transfer cost even at smoke scale.
NET_LOCAL = LocalTrainingConfig(batch_size=4, local_epochs=8)


def _net_session(suite, executor, rounds: int):
    """One remote-leg session (serial reference or RemoteExecutor) on a
    compute-shaped small model: the wire and the server-side upload
    ingest stay in the milliseconds, so the measured overlap isolates
    the agents' concurrent *training* — the thing pipelining hides."""
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0),
        widths=(8, 16), embed_dim=32,
    )
    server = FederatedServer(
        strategy=FedAvgStrategy(NET_LOCAL),
        clients=_make_clients(suite),
        model=model,
        eval_sets={"test": suite.datasets[3]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=CLIENTS_PER_ROUND, seed=0,
        ),
        executor=executor,
    )
    begin = time.perf_counter()
    try:
        return server.run(), time.perf_counter() - begin
    finally:
        executor.close()


def _net_remote_leg(suite, pipelined: bool, rounds: int):
    """One RemoteExecutor session against two *subprocess* agents (real
    processes, so training genuinely overlaps across endpoints); returns
    (run result, elapsed wall seconds)."""
    executor = RemoteExecutor(num_agents=2, pipelined=pipelined)
    host, port = executor.address
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    agents = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.fl.net.agent",
                "--connect", f"{host}:{port}", "--name", f"bench-{index}",
            ],
            env=env,
        )
        for index in range(2)
    ]
    try:
        return _net_session(suite, executor, rounds)
    finally:
        for agent in agents:
            try:
                agent.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                agent.kill()


def _run_net(suite) -> str:
    """The cross-machine networking sweep (``repro.fl.net``), two halves.

    First: warm per-round wire bytes and round wall clock for the
    loopback ``tcp`` transport vs. ``shm`` (or ``pipe`` on shm-less
    hosts), per codec, on the 2-worker pool — what moving the broadcast
    fan-out onto sockets costs, and how much of it each codec claws back.
    Second: the :class:`RemoteExecutor` against two subprocess agents,
    pipelined vs. unpipelined — same trace by construction, so the
    interesting columns are round latency and the measured cross-host
    overlap, which must be > 0 only when pipelining is on.  Both halves
    land in ``BENCH_net.json``.
    """
    rounds = max(3, bench_rounds(4))
    reference = "shm" if shm_supported() else "pipe"
    transport_rows = []
    transport_sweep = []
    for codec in CODEC_GRID:
        for transport in ("tcp", reference):
            wire, walls = _net_transport_rounds(suite, transport, codec, rounds)
            down_kib = (wire.broadcast_bytes + wire.task_bytes) / rounds / 1024
            up_kib = wire.upload_bytes / rounds / 1024
            wall = sum(walls) / rounds
            transport_rows.append(
                [
                    f"{transport} x2",
                    codec,
                    f"{down_kib:.0f}",
                    f"{up_kib:.0f}",
                    f"{wall:.3f}",
                ]
            )
            transport_sweep.append(
                {
                    "transport": transport,
                    "codec": codec,
                    "down_kib_per_round": round(down_kib, 2),
                    "up_kib_per_round": round(up_kib, 2),
                    "wall_s_per_round": round(wall, 4),
                }
            )
    transport_table = format_table(
        [
            "Transport",
            "codec",
            "down KiB/round",
            "up KiB/round",
            "wall (s/round)",
        ],
        transport_rows,
        title=(
            f"Networking — loopback tcp vs {reference}, bytes x wall clock "
            f"per codec ({rounds} rounds, {CLIENTS_PER_ROUND} participants, "
            f"2 workers)"
        ),
    )

    serial_result, _ = _net_session(suite, SerialExecutor(), rounds)
    serial_trace = _trace_of(serial_result)
    remote_rows = []
    remote_json = {"agents": 2, "rounds": rounds}
    for pipelined in (True, False):
        result, elapsed = _net_remote_leg(suite, pipelined, rounds)
        overlap = result.timing.pipeline_overlap_seconds / rounds
        matches = _trace_of(result) == serial_trace
        label = "pipelined" if pipelined else "unpipelined"
        remote_rows.append(
            [
                label,
                f"{elapsed / rounds:.3f}",
                f"{overlap:.3f}",
                "yes" if matches else "NO",
            ]
        )
        remote_json[label] = {
            "wall_s_per_round": round(elapsed / rounds, 4),
            "overlap_s_per_round": round(overlap, 4),
            "trace_matches_serial": bool(matches),
        }
    remote_table = format_table(
        [
            "Remote round loop",
            "wall (s/round)",
            "overlap (s/round)",
            "trace == serial",
        ],
        remote_rows,
        title=(
            f"Networking — RemoteExecutor over 2 subprocess agents, "
            f"pipelined vs unpipelined ({rounds} rounds, "
            f"{CLIENTS_PER_ROUND}/{NUM_CLIENTS} clients)"
        ),
    )
    emit_json(
        "net",
        {
            "rounds": rounds,
            "reference_transport": reference,
            "transports": transport_sweep,
            "remote": remote_json,
        },
    )
    return transport_table + "\n\n" + remote_table


def _scale_factory(image_shape=(3, 8, 8), num_classes=7, samples=6):
    """A deterministic lazy client factory: each id regenerates the same
    small synthetic shard, so a 100k-client population costs nothing until
    a client is actually sampled."""

    def factory(client_id: int) -> Client:
        rng = np.random.default_rng(90_000 + client_id)
        dataset = LabeledDataset(
            images=rng.normal(size=(samples,) + tuple(image_shape)),
            labels=rng.integers(0, num_classes, size=samples),
            domain_ids=np.zeros(samples, dtype=np.int64),
        )
        return Client(client_id, dataset)

    return factory


def _scale_session(population_size, participants, rounds, topology="flat",
                   workers=None):
    factory = _scale_factory()
    model = build_cnn_model((3, 8, 8), 7, rng=np.random.default_rng(0))
    executor = make_executor(
        "serial" if workers is None else "parallel", workers=workers
    )
    server = FederatedServer(
        strategy=FedAvgStrategy(LocalTrainingConfig(batch_size=32)),
        clients=LazyPopulation(population_size, factory),
        model=model,
        eval_sets={"test": factory(0).dataset},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=participants, seed=0,
            topology=topology,
        ),
        executor=executor,
    )
    try:
        return server.run()
    finally:
        executor.close()


def _run_scale() -> str:
    """Population scaling — server peak memory must track the participant
    count, not the population size.

    Two lazy populations (1k and 100k clients) run the same serial FedAvg
    session at a fixed participant count under ``tracemalloc``; the 100k
    peak must stay within 2x of the 1k peak, or the server is still
    holding per-population state somewhere.  A second check replays a
    small lazy session with the two-tier ``edge:4`` topology on both
    engines and demands the trace and final model stay bit-identical to
    flat FedAvg.  The sweep is also written as ``BENCH_scale.json``.
    """
    participants = 64 if is_fast_mode() else 128
    rounds = 2 if is_fast_mode() else 3
    sizes = (1_000, 100_000)
    rows = []
    sweep = []
    peaks = {}
    for size in sizes:
        tracemalloc.start()
        try:
            start = time.perf_counter()
            result = _scale_session(size, participants, rounds)
            elapsed = time.perf_counter() - start
            peak = result.timing.peak_memory_bytes
            if not peak:
                peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        peaks[size] = peak
        sweep.append(
            {
                "population": size,
                "peak_bytes": peak,
                "seconds": round(elapsed, 3),
            }
        )
    ratio = peaks[sizes[-1]] / peaks[sizes[0]]
    within_2x = ratio < 2.0
    for size in sizes:
        rows.append(
            [
                f"{size:,}",
                f"{peaks[size] / (1024 * 1024):.1f}",
                f"{peaks[size] / peaks[sizes[0]]:.2f}x",
            ]
        )

    edge_identical = {}
    for label, workers in (("serial", None), ("parallel", 2)):
        flat = _scale_session(1_000, 16, 2, topology="flat", workers=workers)
        edged = _scale_session(1_000, 16, 2, topology="edge:4",
                               workers=workers)
        edge_identical[label] = bool(
            _trace_of(flat) == _trace_of(edged)
            and sorted(flat.final_state) == sorted(edged.final_state)
            and all(
                np.array_equal(flat.final_state[key], edged.final_state[key])
                for key in flat.final_state
            )
        )

    emit_json(
        "scale",
        {
            "participants": participants,
            "rounds": rounds,
            "samples_per_client": 6,
            "engine": "serial",
            "sweep": sweep,
            "peak_ratio_large_vs_small": round(ratio, 3),
            "within_2x": within_2x,
            "edge_topology": {
                "spec": "edge:4",
                "flat_identical": edge_identical,
            },
        },
    )
    table = format_table(
        ["Population", "server peak (MiB)", "vs 1k"],
        rows,
        title=(
            f"Population scaling — lazy clients, streaming aggregation "
            f"({participants} participants/round, {rounds} rounds, serial; "
            f"within 2x: {'yes' if within_2x else 'NO'})"
        ),
    )
    edge_line = ", ".join(
        f"{label} {'yes' if ok else 'NO'}"
        for label, ok in edge_identical.items()
    )
    return table + f"\nedge:4 trace == flat mean: {edge_line}"


def _tables(suite, worker_grid, codec="identity", transport="auto",
            faults=None, deadline=None, compute="auto", aggregator="mean",
            strategy="fedavg", extra_tables=True) -> str:
    """``extra_tables=False`` keeps non-default CI matrix legs to the
    scaling table alone — the wire, codec, transport, fault, robust, and
    strategy sweeps are independent of the matrix axis and would only
    duplicate the default leg's output."""
    parts = [
        _run(
            suite, worker_grid, codec=codec, transport=transport,
            faults=faults, deadline=deadline, compute=compute,
            aggregator=aggregator, strategy=strategy,
        )
    ]
    if extra_tables:
        parts.append(_run_wire(suite))
        parts.append(_run_codecs(suite))
        parts.append(_run_transports(suite, worker_grid))
        parts.append(_run_faults_table(suite, worker_grid))
        parts.append(_run_compute(worker_grid))
        parts.append(_run_robust(suite))
        parts.append(_run_strategies(suite))
        parts.append(_run_net(suite))
        parts.append(_run_scale())
    return "\n\n".join(parts)


def test_executor_scaling(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(
        lambda: _tables(suite, WORKER_GRID), rounds=1, iterations=1
    )
    emit("executor_scaling", table)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI scale: fast data, workers {1, 2}",
    )
    parser.add_argument(
        "--codec", default="identity",
        help="wire codec for the scaling table (CI runs a matrix of these)",
    )
    parser.add_argument(
        "--transport", default="auto",
        help="wire transport for the scaling table (CI runs pipe and shm legs)",
    )
    parser.add_argument(
        "--compute", default="auto",
        help="compute backend for the scaling table (the CI compute legs "
        "use it to pin loop-vs-ensemble trace identity end to end)",
    )
    parser.add_argument(
        "--faults", default=None,
        help="fault-plan spec for the scaling table (the CI chaos legs use "
        "it to check that a faulty trace stays engine-invariant)",
    )
    parser.add_argument(
        "--aggregator", default="mean",
        help="aggregation rule for the scaling table (the CI byzantine "
        "legs run the robust rules under an attack plan)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="per-round wall-clock budget in seconds for the scaling table",
    )
    parser.add_argument(
        "--strategy", default="fedavg", choices=sorted(STRATEGY_FACTORIES),
        help="strategy for the scaling table (the CI strategy legs pin the "
        "sibling methods' serial/parallel trace identity per transport)",
    )
    args = parser.parse_args()
    if args.transport == "shm" and not shm_supported():
        # A CI matrix leg may land on a host without the shared-memory
        # transport (no /dev/shm, restricted sandboxes); that makes the leg
        # vacuous, not broken.
        print(f"SKIP: transport {args.transport!r} unavailable on this host")
        raise SystemExit(0)
    if args.smoke:
        os.environ.setdefault("REPRO_BENCH_SCALE", "fast")
    grid = [1, 2] if args.smoke else WORKER_GRID
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    name = "executor_scaling"
    if args.codec != "identity":
        name += f"_{args.codec.replace('+', '_')}"
    if args.transport != "auto":
        name += f"_{args.transport}"
    if args.compute != "auto":
        name += f"_{args.compute}"
    if args.faults is not None:
        name += "_faults"
    if args.aggregator != "mean":
        name += f"_{args.aggregator.replace('(', '_').replace(')', '').replace('+', '_').replace(', ', '_')}"
    if args.strategy != "fedavg":
        name += f"_{args.strategy}"
    emit(
        name,
        _tables(
            suite, grid, codec=args.codec, transport=args.transport,
            faults=args.faults, deadline=args.deadline, compute=args.compute,
            aggregator=args.aggregator, strategy=args.strategy,
            # The sweep tables are leg-independent (the transport sweep runs
            # both transports itself, the compute sweep both backends, the
            # fault sweep both fault settings, the robust sweep all rules,
            # the strategy sweep all methods); run them on the local default
            # (auto) and on exactly one CI matrix leg (identity + pipe +
            # auto, no chaos, fedavg).
            extra_tables=args.codec == "identity"
            and args.transport in ("auto", "pipe")
            and args.compute == "auto"
            and args.faults is None
            and args.aggregator == "mean"
            and args.strategy == "fedavg",
        ),
    )
