"""Benchmark-session plumbing: dump result tables past pytest's capture."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_terminal_summary(terminalreporter):
    """Re-print every result table on the live terminal.

    ``common.emit`` overwrites each table file by name, so partial runs
    (e.g. a single bench module) refresh only their own tables and leave
    the rest of ``benchmarks/results/`` intact.
    """
    if not RESULTS_DIR.exists():
        return
    files = sorted(RESULTS_DIR.glob("*.txt"))
    if not files:
        return
    terminalreporter.section("reproduction tables (also in benchmarks/results/)")
    for path in files:
        terminalreporter.write(path.read_text())
