"""Figure 4 — computational-overhead breakdown per method.

All methods run with identical clients, data, and sampled indices (the
paper's protocol).  Costs split into (i) mean local-training time per
client, (ii) mean aggregation time per round, (iii) one-time cost before
round 1.  Shape to check: PARDON's one-time style-extraction cost is small
relative to cumulative local training, its per-round aggregation matches
FedAvg's, and total overhead is comparable to the baselines.
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_rounds, emit, method_factories, METHOD_ORDER, samples_per_class

from repro.data import synthetic_pacs
from repro.eval import ExperimentSetting, run_split_experiment
from repro.nn import build_cnn_model
from repro.nn.serialize import average_states
from repro.utils.tables import format_table

SPLIT = {"train": [0, 1], "val": [2], "test": [3]}


def _run(suite) -> str:
    factories = method_factories()
    rounds = bench_rounds(10)
    rows = []
    for method in METHOD_ORDER:
        setting = ExperimentSetting(
            num_clients=16,
            clients_per_round=0.25,
            heterogeneity=0.1,
            num_rounds=rounds,
            eval_every=rounds,
            seed=0,
        )
        outcome = run_split_experiment(suite, SPLIT, factories[method](), setting)
        timing = outcome.result.timing
        total = (
            timing.one_time_seconds
            + timing.local_train_seconds_total
            + timing.aggregation_seconds_total
        )
        rows.append(
            [
                method,
                f"{timing.local_train_seconds_mean * 1000:.1f}",
                f"{timing.aggregation_seconds_mean * 1000:.1f}",
                f"{timing.one_time_seconds * 1000:.1f}",
                f"{total:.2f}",
            ]
        )
    return format_table(
        [
            "Method",
            "local train (ms/client)",
            "aggregation (ms/round)",
            "one-time cost (ms)",
            "total (s)",
        ],
        rows,
        title=f"Fig. 4 — computational overhead ({rounds} rounds, 16 clients)",
    )


def _naive_average(states, weights):
    """An unvectorized reimplementation of the canonical reduction
    (compensated double-double folds — see
    :class:`repro.nn.serialize.MeanAccumulator` — with one fresh temporary
    per fold).  Kept as the micro-benchmark baseline for
    :func:`average_states`, and it must stay *bit-identical* so the
    table's last column keeps meaning something."""
    w_hi, w_lo = 0.0, 0.0
    for w in weights:
        s = w_hi + float(w)
        bb = s - w_hi
        w_lo += (w_hi - (s - bb)) + (float(w) - bb)
        w_hi = s
    total = w_hi + w_lo
    out = {}
    for key in states[0]:
        hi = np.zeros_like(states[0][key], dtype=np.float64)
        lo = np.zeros_like(hi)
        for w, state in zip(weights, states):
            value = np.multiply(state[key], float(w), dtype=np.float64)
            s = hi + value
            bb = s - hi
            lo = lo + ((hi - (s - bb)) + (value - bb))
            hi = s
        out[key] = (hi + lo) / total
    return out


def _aggregation_microbench(num_states: int = 16, repeats: int = 30) -> str:
    """Per-round aggregation hot path: in-place accumulation vs. per-key
    temporaries, on one CNN-model state dict per client."""
    rng = np.random.default_rng(0)
    model = build_cnn_model((3, 16, 16), num_classes=7, rng=rng)
    base = model.state_dict()
    states = [
        {key: value + rng.normal(scale=0.01, size=value.shape) for key, value in base.items()}
        for _ in range(num_states)
    ]
    weights = [float(i + 1) for i in range(num_states)]

    def timed(fn) -> float:
        fn(states, weights)  # warm-up
        start = time.perf_counter()
        for _ in range(repeats):
            result = fn(states, weights)
        return (time.perf_counter() - start) / repeats, result

    naive_seconds, naive_result = timed(_naive_average)
    inplace_seconds, inplace_result = timed(average_states)
    identical = all(
        np.array_equal(naive_result[key], inplace_result[key])
        for key in naive_result
    )
    rows = [
        [
            "per-fold temporaries (dd reference)",
            f"{naive_seconds * 1000:.2f}", "-", "-",
        ],
        [
            "in-place (MeanAccumulator)",
            f"{inplace_seconds * 1000:.2f}",
            f"{naive_seconds / inplace_seconds:.2f}x",
            "yes" if identical else "NO",
        ],
    ]
    return format_table(
        ["average_states", "ms/aggregation", "speedup", "bit-identical"],
        rows,
        title=(
            f"Aggregation micro-benchmark — {num_states} client states, "
            "CNN model"
        ),
    )


def test_fig4_overhead(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(
        lambda: _run(suite) + "\n\n" + _aggregation_microbench(),
        rounds=1,
        iterations=1,
    )
    emit("fig4_overhead", table)
