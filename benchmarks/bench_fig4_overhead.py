"""Figure 4 — computational-overhead breakdown per method.

All methods run with identical clients, data, and sampled indices (the
paper's protocol).  Costs split into (i) mean local-training time per
client, (ii) mean aggregation time per round, (iii) one-time cost before
round 1.  Shape to check: PARDON's one-time style-extraction cost is small
relative to cumulative local training, its per-round aggregation matches
FedAvg's, and total overhead is comparable to the baselines.
"""

from __future__ import annotations

from common import bench_rounds, emit, method_factories, METHOD_ORDER, samples_per_class

from repro.data import synthetic_pacs
from repro.eval import ExperimentSetting, run_split_experiment
from repro.utils.tables import format_table

SPLIT = {"train": [0, 1], "val": [2], "test": [3]}


def _run(suite) -> str:
    factories = method_factories()
    rounds = bench_rounds(10)
    rows = []
    for method in METHOD_ORDER:
        setting = ExperimentSetting(
            num_clients=16,
            clients_per_round=0.25,
            heterogeneity=0.1,
            num_rounds=rounds,
            eval_every=rounds,
            seed=0,
        )
        outcome = run_split_experiment(suite, SPLIT, factories[method](), setting)
        timing = outcome.result.timing
        total = (
            timing.one_time_seconds
            + timing.local_train_seconds_total
            + timing.aggregation_seconds_total
        )
        rows.append(
            [
                method,
                f"{timing.local_train_seconds_mean * 1000:.1f}",
                f"{timing.aggregation_seconds_mean * 1000:.1f}",
                f"{timing.one_time_seconds * 1000:.1f}",
                f"{total:.2f}",
            ]
        )
    return format_table(
        [
            "Method",
            "local train (ms/client)",
            "aggregation (ms/round)",
            "one-time cost (ms)",
            "total (s)",
        ],
        rows,
        title=f"Fig. 4 — computational overhead ({rounds} rounds, 16 clients)",
    )


def test_fig4_overhead(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(lambda: _run(suite), rounds=1, iterations=1)
    emit("fig4_overhead", table)
