"""Figure 4 companion — communication cost per method, analytic *and* measured.

The paper measures computation; bytes on the wire complete the scalability
story (§IV-B-3 argues PARDON's one-time cost does not grow with rounds).
Analytic payload sizes come from :mod:`repro.fl.communication`, exact for
this repository's float64 tensors.  The measured columns come from a real
(tiny) federated run per method on the parallel engine, whose pool-resident
delta protocol byte-counts every hop (:class:`repro.fl.executor.WireStats`
folded into the timing report).

Shape to check: every method is dominated by weight exchange; PARDON adds
one style vector per client once; CCST's one-time download grows linearly
with the client count (the whole style bank); FPL pays prototypes every
round.  Measured uploads track the analytic weight cost plus pickle framing
(FPL's prototypes and PARDON's one-time cache delta visible on top);
measured downloads come out *below* analytic because the engine broadcasts
once per worker, not per client — the same share-nothing argument PARDON
makes against cross-sharing methods, here realized by the transport.

The second table sweeps the wire codec (:mod:`repro.fl.codec`) on FedAvg:
the codec-adjusted analytic bound next to measured bytes per update and
per round.  Shape to check: fp16/qint8 land near their 4x/8x analytic
ratios; ``delta`` beats the (dense) analytic bound by whatever temporal
redundancy the training run actually has — the honesty gap the analytic
column cannot model.
"""

from __future__ import annotations

import numpy as np

from common import emit

from repro.fl import (
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    MeasuredCommunication,
    ParallelExecutor,
)
from repro.cli import METHODS as METHOD_FACTORIES
from repro.data import synthetic_pacs, partition_clients
from repro.fl.client import Client
from repro.fl.communication import method_communication
from repro.nn import build_cnn_model
from repro.utils.tables import format_table

METHODS = ["fedavg", "fedsr", "fedgma", "fpl", "feddg_ga", "ccst", "pardon"]
CODECS = ["identity", "delta", "fp16", "qint8"]

MEASURE_CLIENTS = 8
MEASURE_ROUNDS = 3


def _measure(method: str, codec: str = "identity") -> MeasuredCommunication:
    """One tiny full-participation run on the parallel engine."""
    suite = synthetic_pacs(seed=0, samples_per_class=6, image_size=8)
    partition = partition_clients(
        suite, [0, 1], MEASURE_CLIENTS, 0.2, np.random.default_rng(0)
    )
    clients = [Client(i, d) for i, d in enumerate(partition.client_datasets)]
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(0)
    )
    strategy = METHOD_FACTORIES[method]()
    strategy.local_config = LocalTrainingConfig(batch_size=8)
    with ParallelExecutor(num_workers=2, codec=codec) as executor:
        server = FederatedServer(
            strategy=strategy,
            clients=clients,
            model=model,
            eval_sets={},
            config=FederatedConfig(
                num_rounds=MEASURE_ROUNDS,
                clients_per_round=MEASURE_CLIENTS,
                seed=0,
                codec=codec,
            ),
            executor=executor,
        )
        result = server.run()
    return MeasuredCommunication.from_report(result.timing)


def _run() -> str:
    model = build_cnn_model((3, 16, 16), num_classes=7,
                            rng=np.random.default_rng(0))
    rows = []
    for method in METHODS:
        comm = method_communication(
            method, model, style_dim=24, num_classes=7, num_clients=100
        )
        total = comm.total(rounds=50, participants_per_round=20, num_clients=100)
        measured = _measure(method)
        rows.append(
            [
                method,
                f"{comm.per_round_up / 1024:.1f}",
                f"{comm.per_round_down / 1024:.1f}",
                f"{comm.one_time_up / 1024:.3f}",
                f"{comm.one_time_down / 1024:.3f}",
                f"{total / 1024 / 1024:.1f}",
                f"{measured.per_update_up / 1024:.1f}",
                f"{measured.per_update_down / 1024:.1f}",
            ]
        )
    return format_table(
        [
            "Method",
            "up KiB/round/client",
            "down KiB/round/client",
            "one-time up KiB",
            "one-time down KiB",
            "session total MiB (50r, 20/100 clients)",
            "measured up KiB/update",
            "measured down KiB/update",
        ],
        rows,
        title=(
            "Fig. 4 companion — communication cost "
            "(analytic float64; measured = parallel engine, "
            f"{MEASURE_ROUNDS} rounds x {MEASURE_CLIENTS} clients, "
            "own tiny model/suite)"
        ),
    )


def _run_codecs() -> str:
    """Codec sweep on FedAvg: codec-adjusted analytic bound vs. measured."""
    model = build_cnn_model((3, 16, 16), num_classes=7,
                            rng=np.random.default_rng(0))
    rows = []
    for codec in CODECS:
        comm = method_communication("fedavg", model, codec=codec)
        measured = _measure("fedavg", codec=codec)
        per_round = (measured.bytes_up + measured.bytes_down) / measured.rounds
        rows.append(
            [
                codec,
                f"{comm.per_round_up / 1024:.1f}",
                f"{measured.per_update_up / 1024:.1f}",
                f"{measured.per_update_down / 1024:.1f}",
                f"{per_round / 1024:.0f}",
            ]
        )
    return format_table(
        [
            "Codec",
            "analytic up KiB/round/client",
            "measured up KiB/update",
            "measured down KiB/update",
            "measured total KiB/round",
        ],
        rows,
        title=(
            "Wire codec sweep — FedAvg, parallel engine "
            f"({MEASURE_ROUNDS} rounds x {MEASURE_CLIENTS} clients; "
            "analytic = dense upper bound, delta's DEFLATE is data-dependent)"
        ),
    )


def _tables() -> str:
    return _run() + "\n\n" + _run_codecs()


def test_fig4b_communication(benchmark):
    table = benchmark.pedantic(_tables, rounds=1, iterations=1)
    emit("fig4b_communication", table)


if __name__ == "__main__":
    emit("fig4b_communication", _tables())
