"""Figure 4 companion — communication cost per method (analytic).

The paper measures computation; bytes on the wire complete the scalability
story (§IV-B-3 argues PARDON's one-time cost does not grow with rounds).
Payload sizes come from :mod:`repro.fl.communication`, exact for this
repository's float64 tensors.

Shape to check: every method is dominated by weight exchange; PARDON adds
one style vector per client once; CCST's one-time download grows linearly
with the client count (the whole style bank); FPL pays prototypes every
round.
"""

from __future__ import annotations

import numpy as np

from common import emit

from repro.fl.communication import method_communication
from repro.nn import build_cnn_model
from repro.utils.tables import format_table

METHODS = ["fedavg", "fedsr", "fedgma", "fpl", "feddg_ga", "ccst", "pardon"]


def _run() -> str:
    model = build_cnn_model((3, 16, 16), num_classes=7,
                            rng=np.random.default_rng(0))
    rows = []
    for method in METHODS:
        comm = method_communication(
            method, model, style_dim=24, num_classes=7, num_clients=100
        )
        total = comm.total(rounds=50, participants_per_round=20, num_clients=100)
        rows.append(
            [
                method,
                f"{comm.per_round_up / 1024:.1f}",
                f"{comm.per_round_down / 1024:.1f}",
                f"{comm.one_time_up / 1024:.3f}",
                f"{comm.one_time_down / 1024:.3f}",
                f"{total / 1024 / 1024:.1f}",
            ]
        )
    return format_table(
        [
            "Method",
            "up KiB/round/client",
            "down KiB/round/client",
            "one-time up KiB",
            "one-time down KiB",
            "session total MiB (50r, 20/100 clients)",
        ],
        rows,
        title="Fig. 4 companion — communication cost (analytic, float64)",
    )


def test_fig4b_communication(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig4b_communication", table)
