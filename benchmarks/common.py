"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a scale the
numpy substrate can run in minutes (DESIGN.md §4 maps experiment -> bench).
Results are printed as ASCII tables AND written to ``benchmarks/results/``;
the conftest dumps them into the terminal at session end so they survive
pytest's output capture.

Environment knobs:

* ``REPRO_BENCH_ROUNDS`` — override the communication-round count;
* ``REPRO_BENCH_SCALE`` — ``"fast"`` shrinks datasets/clients for smoke
  runs, ``"full"`` uses the default (paper-shaped) scale.
"""

from __future__ import annotations

import json
import logging
import os
import warnings
from pathlib import Path
from typing import Callable

from repro.baselines import (
    CCSTStrategy,
    FedDGGAStrategy,
    FedGMAStrategy,
    FedSRStrategy,
    FPLStrategy,
)
from repro.core import PardonStrategy
from repro.fl.strategy import Strategy

logging.disable(logging.INFO)
warnings.filterwarnings("ignore", category=RuntimeWarning)

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's method line-up, in its table order.  "Ours" is PARDON.
METHOD_ORDER = ["FedSR", "FedGMA", "FPL", "FedDG-GA", "CCST", "Ours"]


def method_factories() -> dict[str, Callable[[], Strategy]]:
    """Fresh-strategy factories for the paper's six compared methods."""
    return {
        "FedSR": FedSRStrategy,
        "FedGMA": FedGMAStrategy,
        "FPL": FPLStrategy,
        "FedDG-GA": FedDGGAStrategy,
        "CCST": CCSTStrategy,
        "Ours": PardonStrategy,
    }


def is_fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "full") == "fast"


def bench_rounds(default: int) -> int:
    """Communication rounds for a bench, honouring the env override."""
    value = os.environ.get("REPRO_BENCH_ROUNDS")
    if value:
        return max(1, int(value))
    if is_fast_mode():
        return max(2, default // 5)
    return default


def samples_per_class(default: int) -> int:
    return max(2, default // 4) if is_fast_mode() else default


def bench_seeds() -> list[int]:
    """Seeds to average over (tables are noisy at this scale)."""
    return [0] if is_fast_mode() else [0, 1]


def emit(name: str, text: str) -> None:
    """Print a result block and persist it for the terminal summary."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(banner)


def emit_json(name: str, payload: object) -> None:
    """Persist a machine-readable result as ``BENCH_<name>.json``.

    Companion to :func:`emit` for results that downstream tooling (CI
    trend checks, the README's measured numbers) consumes structurally
    rather than visually.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {path}")
