"""Table III — IWildCam stand-in: accuracy vs heterogeneity lambda.

Paper setting: 243 train / 32 val / 48 test camera domains, N=243 clients,
10% sampled, lambda in {0, 0.1, 1}.  Scaled to 24/6/8 domains here.  Shape
to check: all baselines degrade sharply at lambda=0 (domain separation);
Ours degrades least and has the best AVG on both val and test.
"""

from __future__ import annotations

from common import bench_rounds, emit, method_factories, METHOD_ORDER, samples_per_class

from repro.data import synthetic_iwildcam
from repro.eval import ExperimentSetting, run_fixed_split_protocol
from repro.utils.tables import format_percent, format_table

LAMBDAS = (0.0, 0.1, 1.0)


def _suite():
    return synthetic_iwildcam(
        seed=0,
        num_train_domains=24,
        num_val_domains=6,
        num_test_domains=8,
        num_classes=30,
        mean_samples_per_domain=samples_per_class(60),
    )


def _run(suite) -> str:
    factories = method_factories()
    rows = []
    for method in METHOD_ORDER:
        val_cells, test_cells = [], []
        for lam in LAMBDAS:
            setting = ExperimentSetting(
                num_clients=24,
                clients_per_round=0.25,
                heterogeneity=lam,
                num_rounds=bench_rounds(20),
                eval_every=bench_rounds(20),
                seed=0,
            )
            outcome = run_fixed_split_protocol(suite, factories[method](), setting)
            val_cells.append(outcome.val_accuracy)
            test_cells.append(outcome.test_accuracy)
        rows.append(
            [method]
            + [format_percent(v) for v in val_cells]
            + [format_percent(sum(val_cells) / len(val_cells))]
            + [format_percent(t) for t in test_cells]
            + [format_percent(sum(test_cells) / len(test_cells))]
        )
    headers = (
        ["Method"]
        + [f"val l={lam}" for lam in LAMBDAS]
        + ["val AVG"]
        + [f"test l={lam}" for lam in LAMBDAS]
        + ["test AVG"]
    )
    return format_table(
        headers, rows, title="Table III — synthetic IWildCam, accuracy vs lambda"
    )


def test_table3_iwildcam(benchmark):
    suite = _suite()
    table = benchmark.pedantic(lambda: _run(suite), rounds=1, iterations=1)
    emit("table3_iwildcam", table)
