"""Figures 6 and 7 — reconstructed images from style vectors.

The figures are qualitative; this bench regenerates their raw material and
the quantitative summary underneath it:

* Fig. 6 (third-party attack, inverter trained on the public surrogate):
  reconstructions from sample-level vs client-level style vectors, saved as
  ``.npy`` arrays next to the victims' originals;
* Fig. 7 (inter-client attack, inverter trained on a malicious client's own
  data): the same comparison.

Shape to check: per-image PSNR of sample-style reconstructions is clearly
higher (content leaks) than the best-matching PSNR achievable from
client-style reconstructions, and client-style reconstructions are nearly
identical to each other (one vector cannot encode per-image content —
the paper's "only one image per client" observation).
"""

from __future__ import annotations

import numpy as np

from common import RESULTS_DIR, emit, is_fast_mode

from repro.data import synthetic_pacs
from repro.privacy import psnr, sample_style_vectors, train_inverter
from repro.privacy.attacks import client_style_vectors
from repro.style import InvertibleEncoder
from repro.utils.tables import format_table


def _attack_block(
    figure: str,
    attacker_images: np.ndarray,
    victim_images: np.ndarray,
    encoder: InvertibleEncoder,
    epochs: int,
) -> list[list[str]]:
    # Sample-level sharing exposes spatially-resolved statistics, so the
    # attacker trains a matching rich inverter (patch_grid=2, the CCST
    # analogue) and reconstructs each victim image from its own vector.
    rich_inverter = train_inverter(
        attacker_images, encoder, np.random.default_rng(4),
        epochs=epochs, patch_grid=2,
    ).generator
    sample_styles = sample_style_vectors(victim_images, encoder, patch_grid=2)
    sample_recon = rich_inverter.generate(sample_styles)
    paired_psnr = np.mean(
        [psnr(victim_images[i], sample_recon[i]) for i in range(len(victim_images))]
    )

    # Client-level: 6 clients, one aggregated 2d-dim vector each — all the
    # attacker ever sees under PARDON, so the inverter is global-stats only.
    flat_inverter = train_inverter(
        attacker_images, encoder, np.random.default_rng(4),
        epochs=epochs, patch_grid=0,
    ).generator
    chunks = np.array_split(np.arange(len(victim_images)), 6)
    client_styles = client_style_vectors(
        [victim_images[c] for c in chunks], encoder
    )
    client_recon = flat_inverter.generate(client_styles)
    # Best-case PSNR the adversary can claim: each reconstruction against
    # its most similar private image.
    best_psnrs = []
    for recon in client_recon:
        best_psnrs.append(
            max(psnr(victim_images[i], recon) for i in range(len(victim_images)))
        )
    # Diversity of the reconstructions themselves.
    recon_spread = float(np.std(client_recon, axis=0).mean())
    sample_spread = float(np.std(sample_recon, axis=0).mean())

    RESULTS_DIR.mkdir(exist_ok=True)
    np.save(RESULTS_DIR / f"{figure}_originals.npy", victim_images[:8])
    np.save(RESULTS_DIR / f"{figure}_sample_recon.npy", sample_recon[:8])
    np.save(RESULTS_DIR / f"{figure}_client_recon.npy", client_recon)

    return [
        [figure, "sample-level styles", f"{paired_psnr:.2f}",
         f"{sample_spread:.3f}", "per-image content partially recovered"],
        [figure, "client-level styles", f"{np.mean(best_psnrs):.2f}",
         f"{recon_spread:.3f}", "one blurry image per client, no per-image content"],
    ]


def _run() -> str:
    spc = 8 if is_fast_mode() else 24
    epochs = 10 if is_fast_mode() else 40
    victim_suite = synthetic_pacs(seed=0, samples_per_class=spc)
    surrogate = synthetic_pacs(seed=777, samples_per_class=spc)
    encoder = InvertibleEncoder(levels=1, seed=7)
    victim_images = victim_suite.dataset_for("photo").images

    rows = []
    rows += _attack_block(
        "fig6_third_party",
        surrogate.merged(list(range(surrogate.num_domains))).images,
        victim_images,
        encoder,
        epochs,
    )
    rows += _attack_block(
        "fig7_inter_client",
        victim_suite.dataset_for("art_painting").images,
        victim_images,
        encoder,
        epochs,
    )
    table = format_table(
        ["Figure", "Shared vectors", "PSNR vs private data (dB)",
         "reconstruction diversity", "interpretation"],
        rows,
        title=(
            "Figs. 6-7 — reconstruction attacks "
            "(arrays saved to benchmarks/results/*.npy)"
        ),
    )
    return table


def test_fig6_7_reconstruction(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig6_7_reconstruction", table)
