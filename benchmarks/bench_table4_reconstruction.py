"""Table IV — reconstruction-attack quality: sample- vs client-level styles.

Attack (i): a third party trains the style inverter on a *public surrogate*
dataset (the Tiny-ImageNet substitute: an independently seeded suite) and
attacks compromised style vectors.  Attack (ii): a malicious client trains
on its own private data.  Each attack runs against per-sample style vectors
(what CCST shares) and per-client aggregated vectors (what PARDON shares),
per PACS domain.

Shape to check: FID(client) >> FID(sample) and IS(client) < IS(sample) for
both attacks and all domains — the client-level vector leaks far less.
"""

from __future__ import annotations

import numpy as np

from common import emit, is_fast_mode

from repro.data import synthetic_pacs
from repro.nn import CrossEntropyLoss, SGD, build_cnn_model
from repro.privacy import run_reconstruction_attack
from repro.style import FrozenConvEncoder, InvertibleEncoder
from repro.utils.tables import format_table

DOMAIN_LABELS = {"photo": "P", "art_painting": "A", "cartoon": "C", "sketch": "S"}


def _train_judge(suite, rng):
    """Task classifier used by the inception-score analogue."""
    pool = suite.merged(list(range(suite.num_domains)))
    model = build_cnn_model(suite.image_shape, suite.num_classes, rng=rng)
    criterion = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9)
    epochs = 2 if is_fast_mode() else 6
    n = len(pool)
    shuffle = np.random.default_rng(0)
    for _ in range(epochs):
        order = shuffle.permutation(n)
        for start in range(0, n, 32):
            idx = order[start : start + 32]
            model.zero_grad()
            logits = model.forward(pool.images[idx])
            criterion.forward(logits, pool.labels[idx])
            model.backward(grad_logits=criterion.backward())
            optimizer.step()
    return model


def _run() -> str:
    spc = 8 if is_fast_mode() else 24
    epochs = 10 if is_fast_mode() else 40
    victim_suite = synthetic_pacs(seed=0, samples_per_class=spc)
    surrogate = synthetic_pacs(seed=777, samples_per_class=spc)
    encoder = InvertibleEncoder(levels=1, seed=7)
    fid_encoder = FrozenConvEncoder(seed=11)
    judge = _train_judge(victim_suite, np.random.default_rng(3))

    attacks = {
        # (i) third party trains on the public surrogate.
        "Attack (i)": surrogate.merged(list(range(surrogate.num_domains))).images,
        # (ii) a malicious client trains on its own PACS-like photo data.
        "Attack (ii)": victim_suite.dataset_for("photo").images,
    }

    rows = []
    for attack_name, attacker_images in attacks.items():
        for domain in victim_suite.domain_names:
            victim = victim_suite.dataset_for(domain)
            # The victim domain's data split across 6 clients.
            chunks = np.array_split(np.arange(len(victim)), 6)
            client_data = [victim.images[c] for c in chunks]
            metrics = {}
            for mode in ("sample", "client"):
                report = run_reconstruction_attack(
                    attacker_images=attacker_images,
                    victim_images=victim.images,
                    victim_client_datasets=client_data,
                    mode=mode,
                    encoder=encoder,
                    judge=judge,
                    rng=np.random.default_rng(11),
                    epochs=epochs,
                    fid_encoder=fid_encoder,
                )
                metrics[mode] = report
            rows.append(
                [
                    attack_name,
                    DOMAIN_LABELS[domain],
                    f"{metrics['sample'].fid:.2f}",
                    f"{metrics['client'].fid:.2f}",
                    f"{metrics['sample'].inception_score:.3f}",
                    f"{metrics['client'].inception_score:.3f}",
                ]
            )
    table = format_table(
        [
            "Attack", "Domain",
            "FID sample-style", "FID client-style (higher=safer)",
            "IS sample-style", "IS client-style (lower=safer)",
        ],
        rows,
        title="Table IV — reconstruction quality from shared style vectors",
    )
    return table


def test_table4_reconstruction(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("table4_reconstruction", table)
