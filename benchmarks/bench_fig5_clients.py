"""Figure 5 — accuracy vs the number of clients at fixed K=5 per round.

Paper setting: K=5 participants out of N in {5, 10, 50, 100, 200} (i.e.
100% down to 2.5% participation).  Scaled N grid here.  Shape to check:
FPL/CCST strong at small N but degrading as N grows; Ours the most stable
across the sweep.
"""

from __future__ import annotations

import numpy as np

from common import (
    bench_rounds,
    bench_seeds,
    emit,
    method_factories,
    METHOD_ORDER,
    samples_per_class,
)

from repro.data import synthetic_pacs
from repro.eval import ExperimentSetting, run_split_experiment
from repro.utils.tables import format_percent, format_table

CLIENT_COUNTS = (5, 10, 20, 40)
K = 5
SPLIT = {"train": [0, 1], "val": [2], "test": [3]}


def _run(suite) -> str:
    factories = method_factories()
    rounds = bench_rounds(25)
    val_rows, test_rows = [], []
    for method in METHOD_ORDER:
        val_cells, test_cells = [], []
        for n_clients in CLIENT_COUNTS:
            vals, tests = [], []
            for seed in bench_seeds():
                setting = ExperimentSetting(
                    num_clients=n_clients,
                    clients_per_round=min(K, n_clients),
                    heterogeneity=0.1,
                    num_rounds=rounds,
                    eval_every=rounds,
                    seed=seed,
                )
                outcome = run_split_experiment(
                    suite, SPLIT, factories[method](), setting
                )
                vals.append(outcome.val_accuracy)
                tests.append(outcome.test_accuracy)
            val_cells.append(float(np.mean(vals)))
            test_cells.append(float(np.mean(tests)))
        val_rows.append([method] + [format_percent(v) for v in val_cells])
        test_rows.append([method] + [format_percent(t) for t in test_cells])
    headers = ["Method"] + [f"{K}/{n}" for n in CLIENT_COUNTS]
    return "\n\n".join(
        [
            format_table(headers, val_rows,
                         title="Fig. 5 — validation accuracy vs K/N"),
            format_table(headers, test_rows,
                         title="Fig. 5 — test accuracy vs K/N"),
        ]
    )


def test_fig5_clients(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(lambda: _run(suite), rounds=1, iterations=1)
    emit("fig5_clients", table)
