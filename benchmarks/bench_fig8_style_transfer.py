"""Figure 8 — style-transferred images: PARDON vs CCST.

The paper's visual argument: CCST transfers a client's images to *specific
other clients' styles*, so each transferred set visibly resembles the
target client's private data; PARDON transfers everything to the single
interpolation style, so transferred sets are indistinguishable across
"targets" and resemble no individual client.

Quantified here: for a probe image set, FID between the transferred set
and each target client's private data.  Shape to check: CCST's FID to its
target is much lower than to non-targets (it imitates private data —
the leak); PARDON's FIDs are flat across clients and never approach CCST's
target-FID minimum.
"""

from __future__ import annotations

import numpy as np

from common import emit, is_fast_mode

from repro.core import PardonConfig
from repro.core.interpolation import extract_interpolation_style
from repro.core.local_style import compute_client_style
from repro.data import synthetic_pacs
from repro.privacy import fid_score
from repro.style import (
    FrozenConvEncoder,
    InvertibleEncoder,
    StyleVector,
    apply_style_to_images,
    pooled_style,
)
from repro.utils.tables import format_table


def _run() -> str:
    spc = 8 if is_fast_mode() else 24
    suite = synthetic_pacs(seed=0, samples_per_class=spc)
    encoder = InvertibleEncoder(levels=1, seed=7)
    fid_encoder = FrozenConvEncoder(seed=11)

    # Four "clients", one per domain (the paper's Fig. 8 uses the domain
    # styles directly).  The probe set is photo data to be transferred.
    client_images = {
        name: suite.dataset_for(name).images for name in suite.domain_names
    }
    probe = client_images["photo"]
    targets = ["art_painting", "cartoon", "sketch"]

    # CCST: transfer the probe to each target client's published style.
    ccst_transferred = {
        target: apply_style_to_images(
            probe, pooled_style(encoder.encode(client_images[target])), encoder
        )
        for target in targets
    }
    # PARDON: one interpolation style for everything.
    client_styles = [
        compute_client_style(images, encoder)
        for images in client_images.values()
    ]
    interpolation = extract_interpolation_style(client_styles)
    pardon_transferred = apply_style_to_images(probe, interpolation, encoder)

    rows = []
    for target in targets:
        fid_ccst = fid_score(
            client_images[target], ccst_transferred[target], fid_encoder
        )
        fid_pardon = fid_score(
            client_images[target], pardon_transferred, fid_encoder
        )
        rows.append([target, f"{fid_ccst:.2f}", f"{fid_pardon:.2f}"])

    # Cross-target distinguishability: how far apart the transferred sets
    # are from each other (CCST: large; PARDON: exactly zero, single style).
    ccst_sets = list(ccst_transferred.values())
    cross = [
        fid_score(ccst_sets[i], ccst_sets[j], fid_encoder)
        for i in range(len(ccst_sets))
        for j in range(i + 1, len(ccst_sets))
    ]
    footer = (
        f"CCST cross-target FID (mean): {np.mean(cross):.2f} "
        f"(transferred sets are distinguishable per target)\n"
        f"PARDON cross-target FID: 0.00 by construction "
        f"(a single interpolation style for all clients)"
    )
    table = format_table(
        [
            "Target client",
            "FID(CCST transfer, target's private data) — lower = leaks",
            "FID(PARDON transfer, target's private data)",
        ],
        rows,
        title="Fig. 8 — whose private data do transferred images resemble?",
    )
    return table + "\n" + footer


def test_fig8_style_transfer(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig8_style_transfer", table)
