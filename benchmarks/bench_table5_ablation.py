"""Table V — component ablation of PARDON (v1–v5).

Setting mirrors the paper's Table V run (the LTDO split whose validation
domain is Art and test domain Photo on PACS; here the synthetic analogue).
Shape to check: v5 (full) best; dropping contrastive learning (v3) costs
the most among single-component removals; dropping both clusterings with
generic augmentation positives (v4) is worst.

An extended sweep additionally ablates the median-vs-mean choice of Eq. 5
and the gamma coefficients — the design decisions DESIGN.md §5 calls out.
"""

from __future__ import annotations

from common import bench_rounds, emit, samples_per_class

from repro.core import PardonConfig, PardonStrategy
from repro.data import synthetic_pacs
from repro.eval import ExperimentSetting, run_split_experiment
from repro.utils.tables import format_percent, format_table

VARIANTS = [
    ("PARDON-v1", PardonConfig.v1, "no local clustering"),
    ("PARDON-v2", PardonConfig.v2, "no global clustering"),
    ("PARDON-v3", PardonConfig.v3, "no contrastive learning"),
    ("PARDON-v4", PardonConfig.v4, "no clustering + augmentation positives"),
    ("PARDON-v5", PardonConfig.v5, "full method"),
]


def _setting(seed=0) -> ExperimentSetting:
    return ExperimentSetting(
        num_clients=20,
        clients_per_round=0.2,
        heterogeneity=0.1,
        num_rounds=bench_rounds(25),
        eval_every=bench_rounds(25),
        seed=seed,
    )


def _run_variants(suite) -> str:
    split = {"train": [2, 3], "val": [1], "test": [0]}  # train cartoon+sketch
    rows = []
    for name, config_factory, description in VARIANTS:
        outcome = run_split_experiment(
            suite, split, PardonStrategy(config_factory()), _setting()
        )
        rows.append(
            [
                name,
                description,
                format_percent(outcome.val_accuracy),
                format_percent(outcome.test_accuracy),
            ]
        )
    return format_table(
        ["Variant", "Components", "Validation Acc", "Test Acc"],
        rows,
        title="Table V — PARDON component ablation (synthetic PACS)",
    )


def _run_extended(suite) -> str:
    """Design-choice ablations beyond the paper's grid (DESIGN.md §5)."""
    split = {"train": [2, 3], "val": [1], "test": [0]}
    cases = [
        ("median (Eq. 5, default)", PardonConfig()),
        ("mean instead of median", PardonConfig(global_clustering=False)),
        ("gamma_triplet=0", PardonConfig(gamma_triplet=0.0)),
        ("gamma_triplet=3", PardonConfig(gamma_triplet=3.0)),
        ("gamma_reg=0", PardonConfig(gamma_reg=0.0)),
        ("strict Eq.9 CE (original half only)",
         PardonConfig(ce_on_transferred=False)),
        ("hinged triplet", PardonConfig(triplet_hinge=True)),
    ]
    rows = []
    for name, config in cases:
        outcome = run_split_experiment(
            suite, split, PardonStrategy(config), _setting()
        )
        rows.append(
            [name, format_percent(outcome.val_accuracy),
             format_percent(outcome.test_accuracy)]
        )
    return format_table(
        ["Design choice", "Validation Acc", "Test Acc"],
        rows,
        title="Table V (extended) — design-choice ablations",
    )


def test_table5_ablation(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(lambda: _run_variants(suite), rounds=1, iterations=1)
    emit("table5_ablation", table)


def test_table5_extended_ablation(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(lambda: _run_extended(suite), rounds=1, iterations=1)
    emit("table5_ablation_extended", table)
