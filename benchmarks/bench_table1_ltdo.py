"""Table I — LTDO comparison on PACS and Office-Home stand-ins.

Paper setting: two domains train, the other two serve as validation/test
alternately; N=100 clients, 20% sampled, lambda=0.1, 50 rounds.  Scaled
here per DESIGN.md §4; the *shape* to check is: Ours best AVG on both
datasets, FedSR near chance, CCST competitive but behind Ours.
"""

from __future__ import annotations

import numpy as np

from common import (
    bench_rounds,
    bench_seeds,
    emit,
    method_factories,
    METHOD_ORDER,
    samples_per_class,
)

from repro.data import synthetic_office_home, synthetic_pacs
from repro.eval import ExperimentSetting, run_ltdo_protocol
from repro.utils.tables import format_percent, format_table


def _setting(seed: int) -> ExperimentSetting:
    return ExperimentSetting(
        num_clients=20,
        clients_per_round=0.2,
        heterogeneity=0.1,
        num_rounds=bench_rounds(30),
        eval_every=bench_rounds(30),
        seed=seed,
    )


def _run_dataset(suite, title: str) -> str:
    factories = method_factories()
    domain_names = suite.domain_names
    rows = []
    for method in METHOD_ORDER:
        val_runs, test_runs = [], []
        for seed in bench_seeds():
            outcomes = run_ltdo_protocol(
                suite, factories[method], _setting(seed)
            )
            val_runs.append([outcomes[d].val_accuracy for d in domain_names])
            test_by_domain = {
                outcomes[d].test_domains[0]: outcomes[d].test_accuracy
                for d in domain_names
            }
            test_runs.append([test_by_domain[d] for d in domain_names])
        val_cells = list(np.mean(val_runs, axis=0))
        test_cells = list(np.mean(test_runs, axis=0))
        row = (
            [method]
            + [format_percent(v) for v in val_cells]
            + [format_percent(sum(val_cells) / len(val_cells))]
            + [format_percent(t) for t in test_cells]
            + [format_percent(sum(test_cells) / len(test_cells))]
        )
        rows.append(row)
    headers = (
        ["Method"]
        + [f"val:{d}" for d in domain_names]
        + ["val:AVG"]
        + [f"test:{d}" for d in domain_names]
        + ["test:AVG"]
    )
    return format_table(headers, rows, title=title)


def test_table1_pacs(benchmark):
    suite = synthetic_pacs(seed=0, samples_per_class=samples_per_class(40))
    table = benchmark.pedantic(
        lambda: _run_dataset(suite, "Table I (LTDO) — synthetic PACS"),
        rounds=1, iterations=1,
    )
    emit("table1_ltdo_pacs", table)


def test_table1_office_home(benchmark):
    suite = synthetic_office_home(seed=0, samples_per_class=samples_per_class(4))
    table = benchmark.pedantic(
        lambda: _run_dataset(suite, "Table I (LTDO) — synthetic Office-Home"),
        rounds=1, iterations=1,
    )
    emit("table1_ltdo_office_home", table)
